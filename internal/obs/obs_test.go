package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterRegistryIdentity(t *testing.T) {
	a := GetCounter("test.identity")
	b := GetCounter("test.identity")
	if a != b {
		t.Fatal("GetCounter returned two cells for one name")
	}
	a.Add(3)
	b.Add(4)
	if got := a.Value(); got != 7 {
		t.Fatalf("Value = %d, want 7", got)
	}
	if CounterValue("test.identity") != 7 {
		t.Fatal("CounterValue disagrees with Counter.Value")
	}
	if CounterValue("test.never-registered") != 0 {
		t.Fatal("unregistered counter should read 0")
	}
}

func TestNilMetricsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	c.Add(1)
	g.Set(1)
	g.SetMax(1)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil metrics should read 0")
	}
	var s *Span
	tm := s.Start()
	tm.Stop() // inert
	if tm.Running() {
		t.Fatal("timing on nil span should be inert")
	}
}

func TestGaugeSetMax(t *testing.T) {
	g := GetGauge("test.gauge-max")
	g.Set(10)
	g.SetMax(5)
	if g.Value() != 10 {
		t.Fatalf("SetMax(5) lowered the gauge to %d", g.Value())
	}
	g.SetMax(20)
	if g.Value() != 20 {
		t.Fatalf("SetMax(20) = %d", g.Value())
	}
}

func TestSnapshotsSorted(t *testing.T) {
	GetCounter("test.zzz")
	GetCounter("test.aaa")
	names := []string{}
	for _, mv := range Counters() {
		names = append(names, mv.Name)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Counters() not sorted: %q >= %q", names[i-1], names[i])
		}
	}
}

func TestSpanPathResolution(t *testing.T) {
	s := GetSpan("test.span.leaf")
	if s.Path() != "test.span.leaf" {
		t.Fatalf("Path = %q", s.Path())
	}
	if GetSpan("test.span.leaf") != s {
		t.Fatal("GetSpan returned two nodes for one path")
	}
	if GetSpan("test.span").Child("leaf") != s {
		t.Fatal("Child disagrees with GetSpan")
	}
}

// TestSpanNesting drives the span lifecycle through its edge cases
// (satellite of the observability PR): unbalanced stops, reentrant
// same-name spans, cross-goroutine handles, zero Timings, disabled mode.
func TestSpanNesting(t *testing.T) {
	cases := []struct {
		name string
		// run exercises the given fresh span and returns the expected
		// completed-call count.
		run func(t *testing.T, s *Span) int64
	}{
		{"balanced pair", func(t *testing.T, s *Span) int64 {
			tm := s.Start()
			if !tm.Running() {
				t.Fatal("Timing not running after Start")
			}
			tm.Stop()
			if tm.Running() {
				t.Fatal("Timing still running after Stop")
			}
			return 1
		}},
		{"nested child under parent", func(t *testing.T, s *Span) int64 {
			outer := s.Start()
			inner := s.Child("inner").Start()
			inner.Stop()
			outer.Stop()
			if got := s.Child("inner").Calls(); got != 1 {
				t.Fatalf("inner calls = %d, want 1", got)
			}
			return 1
		}},
		{"unbalanced extra Stop is a no-op", func(t *testing.T, s *Span) int64 {
			tm := s.Start()
			tm.Stop()
			tm.Stop()
			tm.Stop()
			return 1
		}},
		{"zero Timing Stop is inert", func(t *testing.T, s *Span) int64 {
			var tm Timing
			tm.Stop()
			if tm.Running() {
				t.Fatal("zero Timing claims to run")
			}
			return 0
		}},
		{"reentrant same-name spans merge into one node", func(t *testing.T, s *Span) int64 {
			a := s.Start()
			b := s.Start() // second Start on the same node while the first runs
			if s.active.Load() != 2 {
				t.Fatalf("active = %d, want 2", s.active.Load())
			}
			b.Stop()
			a.Stop()
			return 2
		}},
		{"cross-goroutine explicit handle", func(t *testing.T, s *Span) int64 {
			tm := s.Start()
			done := make(chan struct{})
			go func() {
				defer close(done)
				tm.Stop()
			}()
			<-done
			return 1
		}},
		{"disabled mode records nothing", func(t *testing.T, s *Span) int64 {
			Disable()
			defer Enable()
			tm := s.Start()
			if tm.Running() {
				t.Fatal("Start while disabled returned a live Timing")
			}
			tm.Stop()
			return 0
		}},
		{"Disable mid-flight still records on Stop", func(t *testing.T, s *Span) int64 {
			tm := s.Start()
			Disable()
			tm.Stop()
			Enable()
			return 1
		}},
	}
	Enable()
	defer Disable()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := GetSpan("test.nesting." + strings.ReplaceAll(tc.name, " ", "_"))
			want := tc.run(t, s)
			if got := s.Calls(); got != want {
				t.Fatalf("calls = %d, want %d", got, want)
			}
			if s.active.Load() != 0 {
				t.Fatalf("span left active = %d", s.active.Load())
			}
			if want > 0 && s.Nanos() < 0 {
				t.Fatalf("negative accumulated time %d", s.Nanos())
			}
		})
	}
}

// TestSpanStress hammers one span node and one counter from many
// goroutines with timing enabled — the -race build of this test is the
// memory-model check for the whole package.
func TestSpanStress(t *testing.T) {
	Enable()
	defer Disable()
	s := GetSpan("test.stress")
	c := GetCounter("test.stress.count")
	base := c.Value()
	const goroutines = 8
	const iters = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tm := s.Start()
				c.Add(1)
				tm.Stop()
			}
		}()
	}
	wg.Wait()
	if got := c.Value() - base; got != goroutines*iters {
		t.Fatalf("counter total %d, want %d", got, goroutines*iters)
	}
	if s.active.Load() != 0 {
		t.Fatalf("active = %d after all stops", s.active.Load())
	}
	if s.Calls() < goroutines*iters {
		t.Fatalf("calls = %d, want >= %d", s.Calls(), goroutines*iters)
	}
}

func TestResetKeepsShape(t *testing.T) {
	s := GetSpan("test.reset.node")
	c := GetCounter("test.reset.count")
	Enable()
	tm := s.Start()
	time.Sleep(time.Millisecond)
	tm.Stop()
	Disable()
	c.Add(5)
	Reset()
	if s.Calls() != 0 || s.Nanos() != 0 || c.Value() != 0 {
		t.Fatal("Reset left statistics behind")
	}
	if GetSpan("test.reset.node") != s || GetCounter("test.reset.count") != c {
		t.Fatal("Reset invalidated cached pointers")
	}
}

func TestWriteReport(t *testing.T) {
	Enable()
	defer Disable()
	s := GetSpan("test.report.stage")
	tm := s.Start()
	tm.Stop()
	GetCounter("test.report.items").Add(1234567)
	var buf bytes.Buffer
	WriteReport(&buf)
	out := buf.String()
	for _, want := range []string{"stage", "test.report.items", "1,234,567"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	// Zero-valued counters stay out of the report.
	GetCounter("test.report.silent")
	if strings.Contains(out, "test.report.silent") {
		t.Fatal("zero counter appeared in report")
	}
}
