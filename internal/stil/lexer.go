// Package stil reads and writes the subset of IEEE 1450 STIL that carries
// core test information between the ATPG and the STEAC platform (Fig. 1
// "STIL Parser"): Signals, SignalGroups, ScanStructures (chains, lengths,
// scan IOs, scan clocks), Timing, PatternBurst/PatternExec, and Pattern
// blocks whose annotations describe the pattern sets (type, count,
// generator seed).
//
// The writer (Emit) serializes a testinfo.Core the way a commercial ATPG
// would hand it off; the parser (Parse) reconstructs the testinfo.Core, so
// STEAC integrates into a typical design flow by exchanging files, exactly
// as the paper describes.
package stil

import (
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString // "..."
	tokQuote  // '...'
	tokAnn    // {* ... *}
	tokNumber
	tokLBrace
	tokRBrace
	tokSemi
	tokEquals
	tokPlus
)

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "<eof>"
	case tokLBrace:
		return "{"
	case tokRBrace:
		return "}"
	case tokSemi:
		return ";"
	case tokEquals:
		return "="
	case tokPlus:
		return "+"
	}
	return t.text
}

type lexer struct {
	src string
	pos int
	// line is 1-based; lineStart is the index of the current line's first
	// byte, so col() can report 1-based columns without rescanning.
	line      int
	lineStart int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

// col is the 1-based column of the current position.
func (l *lexer) col() int { return l.pos - l.lineStart + 1 }

// newlines accounts for line breaks inside a multi-line token body that
// starts at src index bodyStart.
func (l *lexer) newlines(body string, bodyStart int) {
	n := strings.Count(body, "\n")
	if n == 0 {
		return
	}
	l.line += n
	l.lineStart = bodyStart + strings.LastIndexByte(body, '\n') + 1
}

func (l *lexer) errf(format string, args ...interface{}) error {
	return syntaxErrf(l.line, l.col(), format, args...)
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
			l.lineStart = l.pos
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return l.lexToken()
		}
	}
	return token{kind: tokEOF, line: l.line, col: l.col()}, nil
}

func (l *lexer) lexToken() (token, error) {
	c := l.src[l.pos]
	start := l.line
	startCol := l.col()
	switch c {
	case '{':
		// Annotation {* ... *}
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '*' {
			end := strings.Index(l.src[l.pos+2:], "*}")
			if end < 0 {
				return token{}, l.errf("unterminated annotation")
			}
			text := l.src[l.pos+2 : l.pos+2+end]
			l.newlines(text, l.pos+2)
			l.pos += 2 + end + 2
			return token{kind: tokAnn, text: strings.TrimSpace(text), line: start, col: startCol}, nil
		}
		l.pos++
		return token{kind: tokLBrace, line: start, col: startCol}, nil
	case '}':
		l.pos++
		return token{kind: tokRBrace, line: start, col: startCol}, nil
	case ';':
		l.pos++
		return token{kind: tokSemi, line: start, col: startCol}, nil
	case '=':
		l.pos++
		return token{kind: tokEquals, line: start, col: startCol}, nil
	case '+':
		l.pos++
		return token{kind: tokPlus, line: start, col: startCol}, nil
	case '"', '\'':
		quote := c
		end := strings.IndexByte(l.src[l.pos+1:], quote)
		if end < 0 {
			return token{}, l.errf("unterminated %c-string", quote)
		}
		text := l.src[l.pos+1 : l.pos+1+end]
		l.newlines(text, l.pos+1)
		l.pos += end + 2
		kind := tokString
		if quote == '\'' {
			kind = tokQuote
		}
		return token{kind: kind, text: text, line: start, col: startCol}, nil
	}
	if unicode.IsDigit(rune(c)) {
		j := l.pos
		for j < len(l.src) && (unicode.IsDigit(rune(l.src[j])) || l.src[j] == '.') {
			j++
		}
		text := l.src[l.pos:j]
		l.pos = j
		return token{kind: tokNumber, text: text, line: start, col: startCol}, nil
	}
	if isIdentStart(c) {
		j := l.pos
		for j < len(l.src) && isIdentPart(l.src[j]) {
			j++
		}
		text := l.src[l.pos:j]
		l.pos = j
		return token{kind: tokIdent, text: text, line: start, col: startCol}, nil
	}
	return token{}, l.errf("unexpected character %q", string(c))
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || unicode.IsDigit(rune(c)) || c == '[' || c == ']' ||
		c == '.' || c == '-'
}
