// Package dsc reconstructs the paper's evaluation vehicle: the commercial
// digital-still-camera (DSC) controller SOC of Fig. 3.  The three wrapped
// cores carry exactly the test information of Table 1 (IO counts, scan
// chain count and lengths, pattern counts); the embedded memory inventory
// — "tens of single-port and two-port synchronous SRAMs with different
// sizes" — is reconstructed to DSC-plausible geometries (frame and line
// buffers, JPEG working RAM, FIFOs) and calibrated so the total test time
// lands in the regime the paper reports.
//
// Everything the flow consumes — STIL files, the SOC netlist, the chip
// resource budget — comes from here, so cmd/dscflow and the benchmarks
// regenerate the paper's tables from a single source of truth.
package dsc

import (
	"steac/internal/memory"
	"steac/internal/pattern"
	"steac/internal/sched"
	"steac/internal/testinfo"
	"steac/internal/wrapper"
)

// USB returns the USB core of Table 1: TI=18, TO=4, PI=221, PO=104, four
// clock domains, three resets, one SE, six test signals, four scan chains
// of lengths 1629/78/293/45 with dedicated scan IOs, 716 scan patterns.
func USB() *testinfo.Core {
	return &testinfo.Core{
		Name:        "USB",
		Clocks:      []string{"usb_ck0", "usb_ck1", "usb_ck2", "usb_ck3"},
		Resets:      []string{"usb_rst0", "usb_rst1", "usb_rst2"},
		ScanEnables: []string{"usb_se"},
		TestEnables: []string{"usb_t0", "usb_t1", "usb_t2", "usb_t3", "usb_t4", "usb_t5"},
		PIs:         221, POs: 104,
		ScanChains: []testinfo.ScanChain{
			{Name: "c0", Length: 1629, In: "usb_si0", Out: "usb_so0", Clock: "usb_ck0"},
			{Name: "c1", Length: 78, In: "usb_si1", Out: "usb_so1", Clock: "usb_ck1"},
			{Name: "c2", Length: 293, In: "usb_si2", Out: "usb_so2", Clock: "usb_ck2"},
			{Name: "c3", Length: 45, In: "usb_si3", Out: "usb_so3", Clock: "usb_ck3"},
		},
		Patterns: []testinfo.PatternSet{
			{Name: "scan", Type: testinfo.Scan, Count: 716, Seed: 0xDC01},
		},
	}
}

// TV returns the TV encoder of Table 1: TI=6, TO=1, PI=25, PO=40, one
// clock, reset, SE and test enable, two scan chains of lengths 577/576 with
// one scan-out shared with a functional output, 229 scan patterns and
// 202,673 functional patterns.
func TV() *testinfo.Core {
	return &testinfo.Core{
		Name:        "TV",
		Clocks:      []string{"tv_ck"},
		Resets:      []string{"tv_rst"},
		ScanEnables: []string{"tv_se"},
		TestEnables: []string{"tv_te"},
		PIs:         25, POs: 40,
		ScanChains: []testinfo.ScanChain{
			{Name: "c0", Length: 577, In: "tv_si0", Out: "tv_so0", Clock: "tv_ck"},
			{Name: "c1", Length: 576, In: "tv_si1", Out: "tv_po_shared", Clock: "tv_ck", SharedOut: true},
		},
		Patterns: []testinfo.PatternSet{
			{Name: "scan", Type: testinfo.Scan, Count: 229, Seed: 0xDC02},
			{Name: "func", Type: testinfo.Functional, Count: 202673, Seed: 0xDC03},
		},
	}
}

// JPEG returns the legacy JPEG codec of Table 1: TI=1, TO=0, PI=165,
// PO=104, no scan, one clock domain, 235,696 functional patterns.
func JPEG() *testinfo.Core {
	return &testinfo.Core{
		Name:   "JPEG",
		Clocks: []string{"jpeg_ck"},
		PIs:    165, POs: 104,
		Patterns: []testinfo.PatternSet{
			{Name: "func", Type: testinfo.Functional, Count: 235696, Seed: 0xDC04},
		},
	}
}

// Cores returns the three wrapped cores in Table 1 order.
func Cores() []*testinfo.Core {
	return []*testinfo.Core{USB(), TV(), JPEG()}
}

// Memories returns the reconstructed embedded SRAM inventory: 22 macros
// (18 single-port, 4 two-port), sized like a DSC controller's frame/line
// buffers, JPEG working memory and interface FIFOs.  Total ≈ 437K words,
// so March C- BIST over the whole set costs ≈ 4.37M cycles serially —
// the regime the paper's total test time sits in.
func Memories() []memory.Config {
	sp := func(name string, words, bits int) memory.Config {
		return memory.Config{Name: name, Words: words, Bits: bits, Kind: memory.SinglePort}
	}
	tp := func(name string, words, bits int) memory.Config {
		return memory.Config{Name: name, Words: words, Bits: bits, Kind: memory.TwoPort}
	}
	return []memory.Config{
		// CCD frame buffers.
		sp("fb0", 65536, 16), sp("fb1", 65536, 16), sp("fb2", 65536, 16),
		sp("fb3", 65536, 16),
		// JPEG working buffers.
		sp("jwb0", 32768, 16), sp("jwb1", 32768, 16),
		sp("jq0", 16384, 32), sp("jq1", 16384, 32),
		// Video line buffers (990 words = one PAL-ish line).
		sp("lb0", 16384, 16), sp("lb1", 16384, 16),
		sp("lb2", 8192, 16),
		sp("lb4", 990, 16), sp("lb5", 990, 16),
		// Processor caches / scratch.
		sp("icache", 8192, 32), sp("dcache", 8192, 32),
		sp("scr0", 4096, 16), sp("scr1", 2048, 8), sp("scr2", 1024, 8),
		// Interface FIFOs (two-port).
		tp("usbfifo0", 4096, 16), tp("usbfifo1", 4096, 16),
		tp("tvfifo", 2048, 32), tp("extfifo", 512, 16),
	}
}

// Resources returns the chip-level test resource budget used for the
// scheduling experiment: 26 dedicated test pins (the DSC is pad-limited —
// most pads carry functional signals), 300 pads reachable by the
// functional-test multiplexing, and a test power budget that keeps a large
// SRAM from switching alongside a scanning core.
func Resources() sched.Resources {
	return sched.Resources{
		TestPins:    26,
		FuncPins:    300,
		MaxPower:    34,
		Partitioner: wrapper.LPT,
	}
}

// ChipAreas returns the NAND2-equivalent areas of the unwrapped behavioural
// blocks (Fig. 3): processor, external memory interface and glue logic.
// Together with the three cores this puts the chip logic near 170K gates,
// which is what makes the controller+TAM overhead land at the paper's
// ≈0.3%.
func ChipAreas() map[string]float64 {
	return map[string]float64{
		"processor": 60000,
		"extmem":    18000,
		"glue":      13000,
	}
}

// Interconnects returns the core-to-core glue wiring covered by the EXTEST
// interconnect session: the JPEG codec's pixel-bus outputs feed the TV
// encoder's inputs, the TV encoder's sync outputs feed the USB (status
// readback), and USB control outputs feed the JPEG codec.
func Interconnects() []pattern.Interconnect {
	var wires []pattern.Interconnect
	for i := 0; i < 16; i++ { // JPEG pixel bus -> TV encoder
		wires = append(wires, pattern.Interconnect{
			FromCore: "JPEG", FromPO: i, ToCore: "TV", ToPI: i,
		})
	}
	for i := 0; i < 4; i++ { // TV sync -> USB status
		wires = append(wires, pattern.Interconnect{
			FromCore: "TV", FromPO: 32 + i, ToCore: "USB", ToPI: 200 + i,
		})
	}
	for i := 0; i < 4; i++ { // USB control -> JPEG
		wires = append(wires, pattern.Interconnect{
			FromCore: "USB", FromPO: 96 + i, ToCore: "JPEG", ToPI: 160 + i,
		})
	}
	return wires
}
