package memfault

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"steac/internal/march"
	"steac/internal/memory"
	"steac/internal/obs"
)

// Observability: totals are accumulated in the deterministic aggregation
// pass (never inside worker loops), so they are identical for every worker
// count — the stress tests in internal/obs assert this.
var (
	obsSpanCoverage = obs.GetSpan("memfault.coverage")
	obsCampaigns    = obs.GetCounter("memfault.campaigns")
	obsFaultsSim    = obs.GetCounter("memfault.faults_simulated")
	obsFaultsDet    = obs.GetCounter("memfault.faults_detected")
)

// Detection is the outcome of simulating one fault machine under one March
// algorithm.
type Detection struct {
	Detected bool
	// OpIndex is the position in the access stream where the first
	// mismatch occurred (valid when Detected).
	OpIndex int
	// Access is the detecting read.
	Access march.Access
	// Expected and Got are the full data words compared.
	Expected, Got uint64
}

// Options tunes the simulation.
type Options struct {
	// Background is the data word written for March value 0; value 1
	// writes its complement.  The zero value (all-zeros background) is the
	// classical solid background.
	Background uint64
	// Backgrounds, when non-empty, runs the algorithm once per background
	// (each run on a fresh fault machine, like a BIST background loop) and
	// reports a detection if any run detects.  It overrides Background.
	Backgrounds []uint64
	// PauseBefore lists March element indices preceded by a retention
	// pause (the Del of a retention test); data-retention faults decay
	// during each pause.
	PauseBefore []int
	// Workers is the number of goroutines a Coverage campaign fans its
	// faults across (faults are independent under the single-fault
	// assumption).  0 means runtime.GOMAXPROCS(0).  Results are
	// aggregated in fault-list order, so the Campaign is identical for
	// every worker count.
	Workers int
	// MaxUndetected caps Campaign.Undetected, the list of surviving
	// faults kept for reports.  0 means the default cap of 32; a negative
	// value keeps every survivor (useful for large diagnostic campaigns).
	MaxUndetected int
	// Seed varies any sampling or stochastic choice an engine makes, under
	// the repository-wide Options convention (see DESIGN.md).  The March
	// coverage engine is fully deterministic and makes none, so Seed is
	// accepted for convention compatibility and ignored; 0 everywhere means
	// the canonical deterministic defaults.
	Seed int64
}

// workerCount resolves Options.Workers against the machine and the number
// of independent jobs.
func (o Options) workerCount(jobs int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// undetectedCap resolves Options.MaxUndetected (0 = 32, negative = no cap).
func (o Options) undetectedCap() int {
	if o.MaxUndetected == 0 {
		return 32
	}
	return o.MaxUndetected
}

// Simulate runs alg against a single-fault (or multi-fault) machine on a
// memory of the given configuration and reports whether any read
// mismatches the fault-free reference.
func Simulate(alg march.Algorithm, cfg memory.Config, faults []Fault, opt Options) (Detection, error) {
	if err := alg.Validate(); err != nil {
		return Detection{}, err
	}
	faulty, err := NewFaulty(cfg, faults)
	if err != nil {
		return Detection{}, err
	}
	traces, err := tracesFor(alg, cfg, opt)
	if err != nil {
		return Detection{}, err
	}
	for i, tr := range traces {
		if i > 0 {
			if err := faulty.Reset(faults); err != nil {
				return Detection{}, err
			}
		}
		if det := tr.replay(faulty); det.Detected {
			return det, nil
		}
	}
	return Detection{}, nil
}

// ClassCoverage is the detected/total ratio for one fault class.
type ClassCoverage struct {
	Class    string
	Total    int
	Detected int
}

// Percent returns the coverage percentage (100 for an empty class).
func (c ClassCoverage) Percent() float64 {
	if c.Total == 0 {
		return 100
	}
	return 100 * float64(c.Detected) / float64(c.Total)
}

// Campaign is the result of simulating a list of single faults.
type Campaign struct {
	Algorithm string
	Total     int
	Detected  int
	ByClass   []ClassCoverage
	// Undetected lists the surviving faults, capped at
	// Options.MaxUndetected (default 32) for reports.
	Undetected []Fault
}

// Percent returns the overall fault coverage percentage.
func (c Campaign) Percent() float64 {
	if c.Total == 0 {
		return 100
	}
	return 100 * float64(c.Detected) / float64(c.Total)
}

// faultChunk is how many fault indices a worker claims per atomic fetch.
// It equals PackedLanes, so every claim is exactly one word-parallel batch
// of the bit-plane engine, and chunk boundaries are fixed multiples of the
// lane width regardless of worker count — the serial and parallel paths
// simulate identical batches.
const faultChunk = PackedLanes

// CoverageContext simulates each fault in isolation (single-fault assumption) and
// aggregates coverage per fault class.  The campaign fans the fault list
// across Options.Workers goroutines: the golden trace is computed once and
// shared read-only, each worker reuses one fault-machine scratch buffer
// (FaultyRAM.Reset) across its faults, and results are aggregated in
// fault-list order — the Campaign is bit-identical to a serial run.
//
// Workers poll ctx at chunk boundaries (every faultChunk faults, microseconds to low milliseconds of
// simulation), drain promptly once it fires, and the campaign returns
// ctx.Err() wrapped with the stage name instead of a partial result.
func CoverageContext(ctx context.Context, alg march.Algorithm, cfg memory.Config, faults []Fault, opt Options) (Campaign, error) {
	tm := obsSpanCoverage.Start()
	defer tm.Stop()
	if len(faults) == 0 {
		return Campaign{Algorithm: alg.Name}, nil
	}
	sim, err := NewCoverageSim(alg, cfg, opt)
	if err != nil {
		return Campaign{}, err
	}

	detected := make([]bool, len(faults))
	simErrs := make([]error, len(faults))
	// Both paths fan word-parallel batches of faultChunk faults through the
	// bit-plane packed worker (scalar fallback per fault happens inside
	// DetectBatch); batch boundaries are the same fixed multiples of the
	// lane width either way, so the outcome is worker-count invariant.
	if workers := opt.workerCount(len(faults)); workers <= 1 {
		w, err := sim.NewPackedWorker()
		if err != nil {
			return Campaign{}, err
		}
		for start := 0; start < len(faults); start += faultChunk {
			if ctx.Err() != nil {
				break
			}
			end := start + faultChunk
			if end > len(faults) {
				end = len(faults)
			}
			w.DetectBatch(faults[start:end], detected[start:end], simErrs[start:end])
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				wk, err := sim.NewPackedWorker()
				if err != nil {
					return // cfg was validated by NewCoverageSim; unreachable
				}
				for {
					end := int(next.Add(faultChunk))
					start := end - faultChunk
					if start >= len(faults) || ctx.Err() != nil {
						return
					}
					if end > len(faults) {
						end = len(faults)
					}
					wk.DetectBatch(faults[start:end], detected[start:end], simErrs[start:end])
				}
			}()
		}
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return Campaign{}, fmt.Errorf("memfault: coverage: %w", err)
	}
	for _, err := range simErrs {
		if err != nil {
			return Campaign{}, err
		}
	}
	return Assemble(alg.Name, faults, detected, opt), nil
}

// ClassPercent returns the coverage of one class in a campaign, or -1 if the
// class was not exercised.
func (c Campaign) ClassPercent(class string) float64 {
	for _, cc := range c.ByClass {
		if cc.Class == class {
			return cc.Percent()
		}
	}
	return -1
}
