package report

import (
	"html"
	"strings"
)

// HTML renders the compare table as one self-contained static page — no
// scripts, no external assets — suitable for writing next to CI artifacts
// or serving straight from the daemon.  The schema version rides in a meta
// tag mirroring the JSON document's "schema" field.
func (c *Compare) HTML() string {
	var sb strings.Builder
	sb.WriteString("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n")
	sb.WriteString("<meta charset=\"utf-8\">\n")
	sb.WriteString("<meta name=\"steac-report-schema\" content=\"" + html.EscapeString(c.Schema) + "\">\n")
	sb.WriteString("<title>" + html.EscapeString(c.Title) + "</title>\n")
	sb.WriteString(`<style>
body { font: 14px/1.4 system-ui, sans-serif; margin: 2em; color: #1a1a1a; }
h1 { font-size: 1.2em; }
table { border-collapse: collapse; }
th, td { border: 1px solid #c8c8c8; padding: 4px 10px; text-align: left; white-space: nowrap; }
th { background: #f0f0f0; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
tr:nth-child(even) td { background: #fafafa; }
</style>
`)
	sb.WriteString("</head>\n<body>\n")
	if c.Title != "" {
		sb.WriteString("<h1>" + html.EscapeString(c.Title) + "</h1>\n")
	}
	sb.WriteString("<table>\n<thead><tr>")
	for _, col := range c.Columns {
		sb.WriteString("<th>" + html.EscapeString(col) + "</th>")
	}
	sb.WriteString("</tr></thead>\n<tbody>\n")
	for _, row := range c.Rows {
		sb.WriteString("<tr>")
		for _, cell := range row {
			class := ""
			if isNumericCell(cell) {
				class = ` class="num"`
			}
			sb.WriteString("<td" + class + ">" + html.EscapeString(cell) + "</td>")
		}
		sb.WriteString("</tr>\n")
	}
	sb.WriteString("</tbody>\n</table>\n</body>\n</html>\n")
	return sb.String()
}

// isNumericCell decides right-alignment: digits, sign, decimal point and
// percent only (empty cells stay left-aligned).
func isNumericCell(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c >= '0' && c <= '9', c == '.', c == '-', c == '+', c == '%':
		default:
			return false
		}
	}
	return true
}
