package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The multi-tenant contract tests: identity gates every endpoint with the
// typed 401 envelope, token buckets and job quotas answer 429, the fair
// queue keeps a light tenant's latency bounded while a greedy one floods,
// jobs are visible only to their owner, and the durable job database
// preserves ownership across a daemon restart.  serve.Client is used
// throughout as the reference consumer of the error envelope.

// newTenantServer builds a daemon with the given tenant rows and returns
// the registry (for lane/tenant introspection) plus the live server.
func newTenantServer(t *testing.T, cfg Config, rows []Tenant) (*TenantSet, *Server, string) {
	t.Helper()
	set, err := NewTenantSet(rows)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tenants = set
	s, ts := newTestServer(t, cfg)
	return set, s, ts.URL
}

// memfaultReq is a cheap compute request; distinct seeds make distinct
// cache keys, so every call really travels the admission pipeline.
func memfaultReq(seed int64) MemfaultRequest {
	return MemfaultRequest{Algorithms: []string{"March C-"}, Words: 8, Bits: 2, Seed: seed}
}

func TestTenantAuthEnvelope(t *testing.T) {
	_, _, base := newTenantServer(t, Config{Workers: 2}, []Tenant{
		{ID: "alpha", Key: "ka"}, {ID: "beta", Key: "kb"},
	})

	// Typed sentinel through the client: missing and unknown keys are
	// ErrUnauthorized, a valid key computes.
	ctx := context.Background()
	for _, key := range []string{"", "wrong"} {
		c := &Client{Base: base, APIKey: key}
		if _, _, err := c.Memfault(ctx, memfaultReq(1)); !errors.Is(err, ErrUnauthorized) {
			t.Fatalf("key %q: err = %v, want ErrUnauthorized", key, err)
		}
	}
	c := &Client{Base: base, APIKey: "ka"}
	if _, _, err := c.Memfault(ctx, memfaultReq(1)); err != nil {
		t.Fatalf("valid key rejected: %v", err)
	}

	// Raw wire shape: 401 with the v1 envelope and the stable code.
	resp, blob := post(t, base+"/v1/memfault", `{"words":8,"bits":2}`)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated POST = %d, want 401: %s", resp.StatusCode, blob)
	}
	var we wireError
	if err := json.Unmarshal(blob, &we); err != nil || we.Code != "unauthorized" || we.Error == "" {
		t.Fatalf("401 envelope = %s (err %v), want code \"unauthorized\"", blob, err)
	}
}

func TestTenantRateLimitEnvelope(t *testing.T) {
	// Burst 2 with a rate too slow to refill during the test: the third
	// request must be a typed 429.
	_, _, base := newTenantServer(t, Config{Workers: 2}, []Tenant{
		{ID: "alpha", Key: "ka", RatePerSec: 1e-9, Burst: 2},
		{ID: "beta", Key: "kb"},
	})
	ctx := context.Background()
	c := &Client{Base: base, APIKey: "ka"}
	for i := int64(0); i < 2; i++ {
		if _, _, err := c.Memfault(ctx, memfaultReq(i)); err != nil {
			t.Fatalf("request %d within burst: %v", i, err)
		}
	}
	if _, _, err := c.Memfault(ctx, memfaultReq(9)); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("past burst: err = %v, want ErrQuotaExceeded", err)
	}

	// Raw wire shape: 429, quota_exceeded, Retry-After hint.
	req, _ := http.NewRequest(http.MethodPost, base+"/v1/memfault", strings.NewReader(`{"words":8,"bits":2}`))
	req.Header.Set("Authorization", "Bearer ka")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("rate-limited POST = %d, want 429: %s", resp.StatusCode, buf.Bytes())
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After hint")
	}
	var we wireError
	if err := json.Unmarshal(buf.Bytes(), &we); err != nil || we.Code != "quota_exceeded" {
		t.Fatalf("429 envelope = %s, want code \"quota_exceeded\"", buf.Bytes())
	}

	// The other tenant is untouched by alpha's empty bucket.
	cb := &Client{Base: base, APIKey: "kb"}
	if _, _, err := cb.Memfault(ctx, memfaultReq(1)); err != nil {
		t.Fatalf("beta throttled by alpha's bucket: %v", err)
	}
}

func TestTenantJobQuotaBoundary(t *testing.T) {
	dir := t.TempDir()
	_, s, base := newTenantServer(t, Config{Workers: 2, JobDir: dir, MaxJobs: 2}, []Tenant{
		{ID: "alpha", Key: "ka", MaxJobs: 1},
		{ID: "beta", Key: "kb"},
	})
	defer func() {
		// Settle the jobs still running at test end before TempDir cleanup.
		drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(drainCtx); err != nil {
			t.Errorf("drain: %v", err)
		}
	}()
	ctx := context.Background()
	ca := &Client{Base: base, APIKey: "ka"}

	first, err := ca.SubmitJob(ctx, JobRequest{Kind: "memfault", Spec: json.RawMessage(slowJobSpecJSON), ShardSize: 4})
	if err != nil {
		t.Fatalf("first job: %v", err)
	}
	if first.Tenant != "alpha" {
		t.Fatalf("job tenant = %q, want alpha", first.Tenant)
	}

	// A second, distinct spec exceeds MaxJobs: typed 429.
	other := JobRequest{Kind: "memfault", Spec: json.RawMessage(jobSpecJSON)}
	if _, err := ca.SubmitJob(ctx, other); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota submit: err = %v, want ErrQuotaExceeded", err)
	}
	// Resubmitting the live spec idempotently joins the existing job — no
	// quota charge.
	again, err := ca.SubmitJob(ctx, JobRequest{Kind: "memfault", Spec: json.RawMessage(slowJobSpecJSON), ShardSize: 4})
	if err != nil || again.ID != first.ID {
		t.Fatalf("rejoin = %v (err %v), want job %s", again.ID, err, first.ID)
	}
	// Beta has its own allowance.
	cb := &Client{Base: base, APIKey: "kb"}
	if _, err := cb.SubmitJob(ctx, other); err != nil {
		t.Fatalf("beta blocked by alpha's quota: %v", err)
	}

	// Freeing the slot (cancel, wait terminal) re-opens the quota.
	if _, err := ca.CancelJob(ctx, first.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	waitCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if _, err := ca.WaitJob(waitCtx, first.ID, 20*time.Millisecond, nil); err != nil {
		t.Fatalf("wait canceled job: %v", err)
	}
	if _, err := ca.SubmitJob(ctx, other); err != nil {
		t.Fatalf("submit after slot freed: %v", err)
	}
}

// TestTenantStarvation pins the DRR guarantee deterministically: with one
// worker parked and a greedy tenant's lane already holding four jobs, a
// light tenant's request admitted afterwards is served second (after at
// most one greedy job — the greedy lane's weight), not fifth.
func TestTenantStarvation(t *testing.T) {
	set, s, base := newTenantServer(t, Config{Workers: 1, QueueDepth: 4}, []Tenant{
		{ID: "greedy", Key: "kg"},
		{ID: "light", Key: "kl"},
	})
	tnG := set.lookup("greedy")

	// Park the single worker on a greedy-tenant job.
	release, blocked := blockWorker(t, s)
	defer release()

	// Fill greedy's lane; its own fifth push is the one rejected.
	var greedyDone atomic.Int32
	for i := 0; i < 4; i++ {
		_, err := s.submit(context.Background(), tnG, func(context.Context) (interface{}, error) {
			time.Sleep(100 * time.Millisecond)
			greedyDone.Add(1)
			return nil, nil
		})
		if err != nil {
			t.Fatalf("greedy job %d: %v", i, err)
		}
	}
	if _, err := s.submit(context.Background(), tnG, func(context.Context) (interface{}, error) { return nil, nil }); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("greedy overflow = %v, want ErrQueueFull", err)
	}

	// The light tenant's request still enters its own (empty) lane.
	type lightResult struct {
		err     error
		elapsed time.Duration
	}
	lightc := make(chan lightResult, 1)
	go func() {
		c := &Client{Base: base, APIKey: "kl"}
		start := time.Now()
		_, _, err := c.Memfault(context.Background(), memfaultReq(42))
		lightc <- lightResult{err: err, elapsed: time.Since(start)}
	}()
	// Wait until the light job is actually queued before releasing the
	// worker, so the DRR ordering below is fully determined.
	deadline := time.Now().Add(5 * time.Second)
	for set.lookup("light").queueDepth.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("light request never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}

	release()
	<-blocked
	res := <-lightc
	if res.err != nil {
		t.Fatalf("light tenant request failed under flood: %v", res.err)
	}
	// DRR with weight 1 serves at most one greedy job before the light
	// lane's turn; under FIFO all four (400ms of sleeps) would precede it.
	if n := greedyDone.Load(); n > 2 {
		t.Fatalf("light request served after %d greedy jobs, want <= 2 (starved)", n)
	}
	if res.elapsed > 30*time.Second {
		t.Fatalf("light latency %v, want bounded", res.elapsed)
	}
}

// TestTenantFloodFairness is the concurrent starvation check (run with
// -race): many goroutines flooding as one tenant while another issues a
// serial stream, every one of which must succeed — per-lane bounds mean
// the flood can only ever fill its own lane.
func TestTenantFloodFairness(t *testing.T) {
	_, _, base := newTenantServer(t, Config{Workers: 2, QueueDepth: 2}, []Tenant{
		{ID: "greedy", Key: "kg"},
		{ID: "light", Key: "kl"},
	})
	ctx := context.Background()

	stop := make(chan struct{})
	var flood sync.WaitGroup
	var rejected atomic.Int32
	for g := 0; g < 4; g++ {
		flood.Add(1)
		go func(g int) {
			defer flood.Done()
			c := &Client{Base: base, APIKey: "kg"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_, _, err := c.Memfault(ctx, memfaultReq(int64(1000+g*1000+i)))
				if errors.Is(err, ErrQueueFull) {
					rejected.Add(1)
				} else if err != nil {
					t.Errorf("greedy request: %v", err)
					return
				}
			}
		}(g)
	}

	c := &Client{Base: base, APIKey: "kl"}
	for i := int64(0); i < 10; i++ {
		if _, _, err := c.Memfault(ctx, memfaultReq(i)); err != nil {
			t.Errorf("light request %d failed under flood: %v", i, err)
		}
	}
	close(stop)
	flood.Wait()
	t.Logf("flood saw %d queue-full rejections (its own lane), light saw none", rejected.Load())
}

// TestTenantJobIsolation: jobs are invisible across tenants (GET and
// DELETE answer the same 404 as a nonexistent id), and two tenants
// submitting the identical spec get distinct jobs.
func TestTenantJobIsolation(t *testing.T) {
	dir := t.TempDir()
	_, _, base := newTenantServer(t, Config{Workers: 2, JobDir: dir, MaxJobs: 2}, []Tenant{
		{ID: "alpha", Key: "ka"}, {ID: "beta", Key: "kb"},
	})
	ctx := context.Background()
	ca := &Client{Base: base, APIKey: "ka"}
	cb := &Client{Base: base, APIKey: "kb"}

	req := JobRequest{Kind: "memfault", Spec: json.RawMessage(jobSpecJSON), ShardSize: 4}
	ja, err := ca.SubmitJob(ctx, req)
	if err != nil {
		t.Fatalf("alpha submit: %v", err)
	}
	if _, err := cb.Job(ctx, ja.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("beta GET alpha's job = %v, want ErrNotFound", err)
	}
	if _, err := cb.CancelJob(ctx, ja.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("beta DELETE alpha's job = %v, want ErrNotFound", err)
	}
	jb, err := cb.SubmitJob(ctx, req)
	if err != nil {
		t.Fatalf("beta submit: %v", err)
	}
	if jb.ID == ja.ID {
		t.Fatalf("identical spec shares job id %s across tenants", ja.ID)
	}
	if ja.Fingerprint != jb.Fingerprint {
		t.Fatalf("same spec, different fingerprints: %s vs %s", ja.Fingerprint, jb.Fingerprint)
	}
	waitCtx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	for _, w := range []struct {
		c  *Client
		id string
	}{{ca, ja.ID}, {cb, jb.ID}} {
		st, err := w.c.WaitJob(waitCtx, w.id, 20*time.Millisecond, nil)
		if err != nil || st.State != jobDone {
			t.Fatalf("job %s: state %s, err %v", w.id, st.State, err)
		}
		if !bytes.Equal(st.Result, goldenJobReport(t)) {
			t.Fatalf("job %s result diverges from golden report", w.id)
		}
	}
}

// TestTenantRestartOwnership: the durable job database carries tenant
// ownership and job state across a daemon restart — the owner polls the
// same id and resumes, the other tenant still sees 404.
func TestTenantRestartOwnership(t *testing.T) {
	dir := t.TempDir()
	rows := []Tenant{{ID: "alpha", Key: "ka"}, {ID: "beta", Key: "kb"}}
	ctx := context.Background()

	set1, err := NewTenantSet(rows)
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{Workers: 2, JobDir: dir, MaxJobs: 1, Tenants: set1})
	srv1 := httptest.NewServer(s1.Handler()) // closed mid-test: restart scenario
	ca := &Client{Base: srv1.URL, APIKey: "ka"}

	req := JobRequest{Kind: "memfault", Spec: json.RawMessage(slowJobSpecJSON), ShardSize: 4}
	st, err := ca.SubmitJob(ctx, req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	id := st.ID

	// Let it make checkpoint progress, then drain: in-flight shards are
	// journaled, the state lands in the fsync'd database.
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur, err := ca.Job(ctx, id)
		if err != nil {
			t.Fatalf("poll: %v", err)
		}
		if cur.ShardsDone >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job made no shard progress")
		}
		time.Sleep(10 * time.Millisecond)
	}
	drainCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	if err := s1.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	cancel()
	srv1.Close()

	// Restart: fresh process state, same JobDir, same tenant rows.
	set2, err := NewTenantSet(rows)
	if err != nil {
		t.Fatal(err)
	}
	_, srv2 := newTestServer(t, Config{Workers: 2, JobDir: dir, MaxJobs: 1, Tenants: set2})
	ca2 := &Client{Base: srv2.URL, APIKey: "ka"}
	cb2 := &Client{Base: srv2.URL, APIKey: "kb"}

	got, err := ca2.Job(ctx, id)
	if err != nil {
		t.Fatalf("owner poll after restart: %v", err)
	}
	if got.Tenant != "alpha" {
		t.Fatalf("restarted job tenant = %q, want alpha", got.Tenant)
	}
	if got.State != jobCheckpointed {
		t.Fatalf("restarted job state = %q, want checkpointed", got.State)
	}
	if got.ShardsDone < 1 {
		t.Fatalf("restart lost checkpoint progress: %+v", got)
	}
	if _, err := cb2.Job(ctx, id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("beta sees alpha's job after restart: %v", err)
	}

	// Re-POST of the same spec converges on the same id and resumes from
	// the journal to the exact golden report.
	re, err := ca2.SubmitJob(ctx, req)
	if err != nil {
		t.Fatalf("resubmit after restart: %v", err)
	}
	if re.ID != id {
		t.Fatalf("resubmit id %s, want %s", re.ID, id)
	}
	waitCtx, cancelWait := context.WithTimeout(ctx, 60*time.Second)
	defer cancelWait()
	fin, err := ca2.WaitJob(waitCtx, id, 20*time.Millisecond, nil)
	if err != nil || fin.State != jobDone {
		t.Fatalf("resumed job: state %s, err %v", fin.State, err)
	}
	if fin.Resumed == 0 {
		t.Error("resumed job replayed no shards from the journal")
	}
	if !bytes.Equal(fin.Result, goldenJobReportFor(t, slowJobSpecJSON)) {
		t.Fatal("resumed result diverges from golden report")
	}
}

func TestTenantMetricsExported(t *testing.T) {
	_, _, base := newTenantServer(t, Config{Workers: 2}, []Tenant{
		{ID: "metrics-a", Key: "ka", RatePerSec: 1e-9, Burst: 1},
	})
	ctx := context.Background()
	c := &Client{Base: base, APIKey: "ka"}
	if _, _, err := c.Memfault(ctx, memfaultReq(7)); err != nil {
		t.Fatalf("request: %v", err)
	}
	if _, _, err := c.Memfault(ctx, memfaultReq(8)); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("second request = %v, want ErrQuotaExceeded", err)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	body := buf.String()
	for _, metric := range []string{
		"serve.tenant.metrics-a.requests",
		"serve.tenant.metrics-a.rejects",
		"serve.tenant.metrics-a.queue_depth",
	} {
		if !strings.Contains(body, metric) {
			t.Errorf("/metrics missing %s", metric)
		}
	}
	if !metricAtLeast(body, "serve.tenant.metrics-a.requests", 2) {
		t.Errorf("tenant request counter below 2:\n%s", grepMetrics(body, "metrics-a"))
	}
	if !metricAtLeast(body, "serve.tenant.metrics-a.rejects", 1) {
		t.Errorf("tenant reject counter below 1:\n%s", grepMetrics(body, "metrics-a"))
	}
}

func metricAtLeast(body, name string, min int64) bool {
	for _, line := range strings.Split(body, "\n") {
		var v int64
		if _, err := fmt.Sscanf(line, name+" %d", &v); err == nil {
			return v >= min
		}
	}
	return false
}

func grepMetrics(body, substr string) string {
	var out []string
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestDrainingEnvelope: after Drain, new work is a typed 503.
func TestDrainingEnvelope(t *testing.T) {
	_, s, base := newTenantServer(t, Config{Workers: 1}, []Tenant{{ID: "alpha", Key: "ka"}})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	c := &Client{Base: base, APIKey: "ka"}
	if _, _, err := c.Memfault(context.Background(), memfaultReq(3)); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain request = %v, want ErrDraining", err)
	}
	if _, err := c.SubmitJob(context.Background(), JobRequest{Kind: "memfault", Spec: json.RawMessage(jobSpecJSON)}); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain job submit = %v, want ErrDraining", err)
	}
}

