package xcheck

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"steac/internal/march"
	"steac/internal/memory"
)

// GroupCase names one sequencer group to cross-check: the March algorithm
// its sequencer is programmed with and the memories its TPGs serve.
type GroupCase struct {
	Name string
	Alg  march.Algorithm
	Mems []memory.Config
}

// VerifyGroupsContext runs VerifyBISTContext over every case, fanned out over
// opts.Workers goroutines, and returns the results in case order (the
// outcome is identical for any worker count — each case is independent).
//
// Workers poll ctx at case claims, each case polls mid-session inside the gate-level simulation
// loop, and a canceled run returns ctx.Err() wrapped with the stage name.
func VerifyGroupsContext(ctx context.Context, cases []GroupCase, opts Options) ([]EquivResult, error) {
	results := make([]EquivResult, len(cases))
	errs := make([]error, len(cases))
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < opts.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(cases) || ctx.Err() != nil {
					return
				}
				results[i], errs[i] = VerifyBISTContext(ctx, cases[i].Name, cases[i].Alg, cases[i].Mems, opts)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("xcheck: verify: %w", err)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// WriteReport renders a full cross-check report: the equivalence matrix,
// then each fault campaign with its undetected faults enumerated (the
// honest part of a coverage claim).
func WriteReport(w io.Writer, rep *Report) {
	if len(rep.Equiv) > 0 {
		fmt.Fprintln(w, "Gate-level differential verification (netlist vs behavioural reference)")
		var cycles, gates int
		var checks int64
		for _, e := range rep.Equiv {
			fmt.Fprintf(w, "  %s\n", e.String())
			for _, m := range e.Mismatches {
				fmt.Fprintf(w, "      %s\n", m.String())
			}
			for _, n := range e.Notes {
				fmt.Fprintf(w, "      note: %s\n", n)
			}
			cycles += e.Cycles
			gates += e.Gates
			checks += e.Checks
		}
		status := "all equivalent"
		if !rep.Pass() {
			status = "MISMATCHES FOUND"
		}
		fmt.Fprintf(w, "  %d designs, %d gates, %d cycles, %d pin checks: %s\n",
			len(rep.Equiv), gates, cycles, checks, status)
	}
	if len(rep.Campaigns) > 0 {
		fmt.Fprintln(w, "Stuck-at fault-injection campaigns (tester-visible detection)")
		const maxList = 24
		for _, c := range rep.Campaigns {
			fmt.Fprintf(w, "  %s\n", c.String())
			for i, f := range c.Undetected {
				if i == maxList {
					fmt.Fprintf(w, "      ... and %d more undetected\n", c.UndetectedCount()-maxList)
					break
				}
				fmt.Fprintf(w, "      undetected: %s/%s stuck-at-%d\n", f.Gate, f.Port, b2i(f.Value))
			}
		}
	}
}

func b2i(v bool) int {
	if v {
		return 1
	}
	return 0
}
