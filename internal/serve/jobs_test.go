package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"steac/internal/campaign"
	"steac/internal/obs"
)

// The job-API tests drive full March C- coverage grades whose golden
// reports are computed in process, through the same campaign.Run path the
// job manager uses.  Every completed job, interrupted or not, must
// reproduce those exact bytes.  The lifecycle tests use a tiny 64x4 macro;
// the cancel/drain tests use a 512x8 macro (a few hundred ms of shards) so
// the job is still reliably running when the interruption lands.

const (
	jobSpecJSON     = `{"algorithm":"March C-","config":{"Name":"jobmem","Words":64,"Bits":4},"all_faults":true}`
	slowJobSpecJSON = `{"algorithm":"March C-","config":{"Name":"jobmem","Words":512,"Bits":8},"all_faults":true}`
)

func jobBodyFor(specJSON string, shardSize int) string {
	return fmt.Sprintf(`{"kind":"memfault","spec":%s,"shard_size":%d}`, specJSON, shardSize)
}

func jobBody(shardSize int) string { return jobBodyFor(jobSpecJSON, shardSize) }

var jobGolden struct {
	mu    sync.Mutex
	blobs map[string][]byte
}

func goldenJobReportFor(t *testing.T, specJSON string) []byte {
	t.Helper()
	jobGolden.mu.Lock()
	defer jobGolden.mu.Unlock()
	if blob, ok := jobGolden.blobs[specJSON]; ok {
		return blob
	}
	spec, err := campaign.Decode(campaign.KindMemfault, json.RawMessage(specJSON))
	if err != nil {
		t.Fatalf("golden campaign: %v", err)
	}
	res, err := campaign.Run(context.Background(), spec, campaign.Options{})
	if err != nil {
		t.Fatalf("golden campaign: %v", err)
	}
	blob, err := json.Marshal(res.Report)
	if err != nil {
		t.Fatalf("golden campaign: %v", err)
	}
	if jobGolden.blobs == nil {
		jobGolden.blobs = map[string][]byte{}
	}
	jobGolden.blobs[specJSON] = blob
	return blob
}

func goldenJobReport(t *testing.T) []byte { return goldenJobReportFor(t, jobSpecJSON) }

func jobPost(t *testing.T, base, body string, want int) JobStatus {
	t.Helper()
	resp, blob := post(t, base+"/v1/jobs", body)
	if resp.StatusCode != want {
		t.Fatalf("POST /v1/jobs = %d, want %d: %s", resp.StatusCode, want, blob)
	}
	if want != http.StatusAccepted {
		return JobStatus{}
	}
	var st JobStatus
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatalf("bad job status %s: %v", blob, err)
	}
	return st
}

func jobDo(t *testing.T, method, url string, want int) JobStatus {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != want {
		t.Fatalf("%s %s = %d, want %d: %s", method, url, resp.StatusCode, want, buf.Bytes())
	}
	var st JobStatus
	if want == http.StatusOK || want == http.StatusAccepted {
		if err := json.Unmarshal(buf.Bytes(), &st); err != nil {
			t.Fatalf("bad job status %s: %v", buf.Bytes(), err)
		}
	}
	return st
}

func jobGet(t *testing.T, base, id string, want int) JobStatus {
	t.Helper()
	return jobDo(t, http.MethodGet, base+"/v1/jobs/"+id, want)
}

func terminalJobState(state string) bool {
	return state == jobDone || state == jobFailed || state == jobCanceled
}

// pollJob re-GETs a job until pred holds (typically "reached a terminal
// state").
func pollJob(t *testing.T, base, id string, pred func(JobStatus) bool) JobStatus {
	t.Helper()
	deadline := time.Now().Add(90 * time.Second)
	for {
		st := jobGet(t, base, id, http.StatusOK)
		if pred(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck: state %s, %d/%d shards", id, st.State, st.ShardsDone, st.ShardsTotal)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestJobLifecycle is the happy path: submit, poll to done, result equals
// the in-process golden run, and resubmission of the same spec joins the
// finished job instead of recomputing.
func TestJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, JobDir: t.TempDir()})
	submitted := obs.CounterValue("serve.jobs_submitted")

	st := jobPost(t, ts.URL, jobBody(32), http.StatusAccepted)
	if len(st.ID) != 16 || len(st.Fingerprint) != 64 || !strings.HasPrefix(st.Fingerprint, st.ID) {
		t.Fatalf("job id %q should be a 16-char prefix of fingerprint %q", st.ID, st.Fingerprint)
	}
	if st.Kind != campaign.KindMemfault {
		t.Fatalf("kind = %q, want memfault", st.Kind)
	}

	fin := pollJob(t, ts.URL, st.ID, func(s JobStatus) bool { return terminalJobState(s.State) })
	if fin.State != jobDone {
		t.Fatalf("job finished %s (%s), want done", fin.State, fin.Error)
	}
	if fin.ShardsTotal == 0 || fin.ShardsDone != fin.ShardsTotal {
		t.Fatalf("done job reports %d/%d shards", fin.ShardsDone, fin.ShardsTotal)
	}
	if fin.UnitsTotal == 0 || fin.UnitsDone != fin.UnitsTotal {
		t.Fatalf("done job reports %d/%d units", fin.UnitsDone, fin.UnitsTotal)
	}
	if !bytes.Equal(fin.Result, goldenJobReport(t)) {
		t.Fatalf("job result differs from the in-process golden run:\n%s\nvs\n%s", fin.Result, goldenJobReport(t))
	}
	var sawCampaignCounter bool
	for _, c := range fin.Counters {
		if c.Name == "campaign.shards_completed" {
			sawCampaignCounter = true
		}
	}
	if !sawCampaignCounter {
		t.Fatalf("status counters %v miss campaign.shards_completed", fin.Counters)
	}

	again := jobPost(t, ts.URL, jobBody(32), http.StatusAccepted)
	if again.ID != st.ID || again.State != jobDone || !bytes.Equal(again.Result, fin.Result) {
		t.Fatalf("resubmission did not join the finished job: %+v", again)
	}
	if got := obs.CounterValue("serve.jobs_submitted") - submitted; got != 1 {
		t.Fatalf("jobs_submitted grew by %d, want 1 (idempotent resubmit)", got)
	}
}

// TestJobCancelResume: DELETE drains the job at a shard boundary, its
// checkpoint keeps the completed shards, and resubmitting the same spec
// resumes them (Resumed > 0) to the exact golden report.
func TestJobCancelResume(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{Workers: 2, JobDir: dir})
	canceled := obs.CounterValue("serve.jobs_canceled")

	st := jobPost(t, ts.URL, jobBodyFor(slowJobSpecJSON, 4), http.StatusAccepted)
	pollJob(t, ts.URL, st.ID, func(s JobStatus) bool { return s.ShardsDone >= 1 })
	jobDo(t, http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, http.StatusAccepted)

	fin := pollJob(t, ts.URL, st.ID, func(s JobStatus) bool { return terminalJobState(s.State) })
	if fin.State != jobCanceled {
		t.Fatalf("job finished %s (%s), want canceled", fin.State, fin.Error)
	}
	if !strings.Contains(fin.Error, "cancel") {
		t.Fatalf("canceled job error %q does not mention cancellation", fin.Error)
	}
	if obs.CounterValue("serve.jobs_canceled") == canceled {
		t.Fatal("jobs_canceled did not grow")
	}
	info, err := campaign.Inspect(filepath.Join(dir, st.ID))
	if err != nil {
		t.Fatalf("inspect checkpoint after cancel: %v", err)
	}
	if info.ShardsDone == 0 {
		t.Fatal("cancel left no journaled shards — nothing to resume")
	}

	re := jobPost(t, ts.URL, jobBodyFor(slowJobSpecJSON, 4), http.StatusAccepted)
	if re.ID != st.ID {
		t.Fatalf("resubmission id %s, want %s", re.ID, st.ID)
	}
	fin2 := pollJob(t, ts.URL, st.ID, func(s JobStatus) bool { return terminalJobState(s.State) })
	if fin2.State != jobDone {
		t.Fatalf("resumed job finished %s (%s), want done", fin2.State, fin2.Error)
	}
	if fin2.Resumed == 0 {
		t.Fatal("resumed job replayed 0 shards from the checkpoint")
	}
	if !bytes.Equal(fin2.Result, goldenJobReportFor(t, slowJobSpecJSON)) {
		t.Fatal("resumed job result differs from the uninterrupted golden run")
	}
}

// TestJobDrainRestartResume is the daemon-restart contract: Drain
// checkpoints a running job; a new Server over the same JobDir reports it
// from disk as "checkpointed" and resumes it on resubmission, bit-identical
// to the golden run.
func TestJobDrainRestartResume(t *testing.T) {
	dir := t.TempDir()
	srvA, tsA := newTestServer(t, Config{Workers: 2, JobDir: dir})

	st := jobPost(t, tsA.URL, jobBodyFor(slowJobSpecJSON, 4), http.StatusAccepted)
	pollJob(t, tsA.URL, st.ID, func(s JobStatus) bool { return s.ShardsDone >= 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srvA.Drain(ctx); err != nil {
		t.Fatalf("drain with a running job: %v", err)
	}
	if got := jobGet(t, tsA.URL, st.ID, http.StatusOK); got.State != jobCanceled {
		t.Fatalf("after drain the job is %s, want canceled", got.State)
	}
	jobPost(t, tsA.URL, jobBodyFor(slowJobSpecJSON, 4), http.StatusServiceUnavailable)

	// "Restart": a fresh Server over the same checkpoint root.
	_, tsB := newTestServer(t, Config{Workers: 2, JobDir: dir})
	onDisk := jobGet(t, tsB.URL, st.ID, http.StatusOK)
	if onDisk.State != jobCheckpointed {
		t.Fatalf("restarted daemon reports %s, want checkpointed", onDisk.State)
	}
	if onDisk.Fingerprint != st.Fingerprint || onDisk.Kind != campaign.KindMemfault {
		t.Fatalf("disk status %+v does not match the submitted job", onDisk)
	}
	if onDisk.ShardsDone == 0 || onDisk.ShardsTotal == 0 {
		t.Fatalf("disk status lost shard progress: %d/%d", onDisk.ShardsDone, onDisk.ShardsTotal)
	}

	re := jobPost(t, tsB.URL, jobBodyFor(slowJobSpecJSON, 4), http.StatusAccepted)
	if re.ID != st.ID {
		t.Fatalf("re-POST id %s, want %s", re.ID, st.ID)
	}
	fin := pollJob(t, tsB.URL, st.ID, func(s JobStatus) bool { return terminalJobState(s.State) })
	if fin.State != jobDone {
		t.Fatalf("resumed job finished %s (%s), want done", fin.State, fin.Error)
	}
	if fin.Resumed == 0 {
		t.Fatal("restart resumed 0 shards from the checkpoint")
	}
	if !bytes.Equal(fin.Result, goldenJobReportFor(t, slowJobSpecJSON)) {
		t.Fatal("post-restart result differs from the uninterrupted golden run")
	}
}

// TestJobFailureState: a spec that decodes but cannot prepare fails the
// job asynchronously (the submit itself is still 202), with the engine
// error surfaced in the status.
func TestJobFailureState(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, JobDir: t.TempDir()})
	failed := obs.CounterValue("serve.jobs_failed")
	body := `{"kind":"memfault","spec":{"algorithm":"nope","config":{"Name":"x","Words":8,"Bits":2},"all_faults":true}}`
	st := jobPost(t, ts.URL, body, http.StatusAccepted)
	fin := pollJob(t, ts.URL, st.ID, func(s JobStatus) bool { return terminalJobState(s.State) })
	if fin.State != jobFailed {
		t.Fatalf("job finished %s, want failed", fin.State)
	}
	if !strings.Contains(fin.Error, "unknown march algorithm") {
		t.Fatalf("failure error %q does not carry the engine error", fin.Error)
	}
	if obs.CounterValue("serve.jobs_failed") == failed {
		t.Fatal("jobs_failed did not grow")
	}
}

// TestJobBadRequests pins the synchronous validation layer: malformed
// bodies are 400 at submit time, unknown ids are 404, and ids that are not
// fingerprint prefixes never reach the checkpoint directory.
func TestJobBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, JobDir: t.TempDir()})
	for _, body := range []string{
		`{}`,
		`{"kind":"memfault"}`,
		`{"spec":{"algorithm":"March C-"}}`,
		`{"kind":"no-such-kind","spec":{}}`,
		`{"kind":"memfault","spec":{"algorithm":42}}`,
		`{"kind":"memfault","spec":{},"bogus":1}`,
		`not json`,
	} {
		jobPost(t, ts.URL, body, http.StatusBadRequest)
	}
	jobGet(t, ts.URL, "feedfacefeedface", http.StatusNotFound)
	jobDo(t, http.MethodDelete, ts.URL+"/v1/jobs/feedfacefeedface", http.StatusNotFound)
	// Ids with the wrong shape (too short, non-hex, path-escaping) must be
	// rejected before any filesystem access.
	for _, id := range []string{"shorty", "..%2F..%2Fetc", "ZZZZZZZZZZZZZZZZ", "feedfacefeedfac"} {
		jobGet(t, ts.URL, id, http.StatusNotFound)
	}
}
