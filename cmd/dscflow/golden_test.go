package main

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"steac/internal/brains"
	"steac/internal/core"
	"steac/internal/dsc"
	"steac/internal/memory"
)

var update = flag.Bool("update", false, "rewrite the golden report files")

var flowOnce = sync.OnceValues(func() (*core.FlowResult, error) {
	soc, err := dsc.BuildSOC()
	if err != nil {
		return nil, err
	}
	stils, err := core.EmitSTIL(dsc.Cores())
	if err != nil {
		return nil, err
	}
	return core.RunFlowContext(context.Background(), core.FlowInput{
		STIL:        stils,
		SOC:         soc,
		Resources:   dsc.Resources(),
		Memories:    dsc.Memories(),
		BISTOptions: brains.Options{Grouping: brains.GroupPerMemory, Workers: 1},
	})
})

// checkGolden compares got against testdata/<name>.golden byte-for-byte;
// with -update it rewrites the file instead.  The goldens pin the printed
// report sections: any change to a published number or to formatting must
// show up as a reviewed diff, not drift silently.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/dscflow -update` to create it)", err)
	}
	if got != string(want) {
		t.Errorf("%s differs from golden file (run `go test ./cmd/dscflow -update` if the change is intended)\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

func TestTable1Golden(t *testing.T) {
	res, err := flowOnce()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table1", core.Table1(res.Cores))
}

func TestBISTPlanGolden(t *testing.T) {
	res, err := flowOnce()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "bistplan", brains.Report(res.Brains))
}

func TestMarchEfficiencyGolden(t *testing.T) {
	rows, err := brains.EvaluateContext(context.Background(), memory.Config{Name: "eval", Words: 16, Bits: 4}, nil, brains.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "marcheff", brains.EvaluationTable(rows))
}

// TestScenariosGolden pins the -scenarios registry listing: adding or
// reshaping a builtin scenario must show up as a reviewed golden diff.
func TestScenariosGolden(t *testing.T) {
	checkGolden(t, "scenarios", scenarioList())
}
