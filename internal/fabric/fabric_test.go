package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"steac/internal/campaign"
	"steac/internal/memory"
)

// testSpec is the standard small campaign: the generated fault universe of
// a 64x4 single-port RAM under March C- — the same workload the campaign
// battery uses, big enough for dozens of shards.
func testSpec() *campaign.CoverageSpec {
	return &campaign.CoverageSpec{
		Algorithm: "March C-",
		Config:    memory.Config{Name: "t0", Words: 64, Bits: 4, Kind: memory.SinglePort},
		AllFaults: true,
	}
}

// goldenReport runs spec uninterrupted in a single process and returns the
// marshaled report — the byte-identity yardstick every fabric run is
// measured against.
func goldenReport(t *testing.T, spec campaign.Spec) []byte {
	t.Helper()
	res, err := campaign.Run(context.Background(), spec, campaign.Options{Workers: 2})
	if err != nil {
		t.Fatalf("golden run: %v", err)
	}
	raw, err := json.Marshal(res.Report)
	if err != nil {
		t.Fatalf("marshal golden report: %v", err)
	}
	return raw
}

// cluster is a coordinator behind a real HTTP listener whose handler can
// be atomically swapped — the restart chaos uses that to replace the
// coordinator (rebuilt from disk) without changing the URL nodes dial.
type cluster struct {
	cfg     Config
	coord   *Coordinator
	srv     *httptest.Server
	handler atomic.Pointer[http.ServeMux]
}

func newCluster(t *testing.T, cfg Config) *cluster {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	coord, err := New(cfg)
	if err != nil {
		t.Fatalf("New coordinator: %v", err)
	}
	c := &cluster{cfg: cfg, coord: coord}
	mux := http.NewServeMux()
	coord.Register(mux)
	c.handler.Store(mux)
	c.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c.handler.Load().ServeHTTP(w, r)
	}))
	t.Cleanup(c.srv.Close)
	return c
}

// restart replaces the coordinator with a fresh one recovered from the
// same checkpoint dir; in-flight leases are forgotten, journaled shards
// are not.
func (c *cluster) restart(t *testing.T) {
	t.Helper()
	coord, err := New(c.cfg)
	if err != nil {
		t.Fatalf("restart coordinator: %v", err)
	}
	c.coord = coord
	mux := http.NewServeMux()
	coord.Register(mux)
	c.handler.Store(mux)
}

func (c *cluster) client() *Client { return &Client{Base: c.srv.URL} }

func (c *cluster) node(id string, workers int) *Node {
	return &Node{
		ID: id, Client: c.client(), Dir: c.cfg.Dir,
		Workers: workers, Poll: 5 * time.Millisecond,
	}
}

// submit registers spec and returns its info.
func (c *cluster) submit(t *testing.T, spec campaign.Spec, shardSize int) CampaignInfo {
	t.Helper()
	payload, err := spec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.client().Submit(context.Background(), SubmitRequest{
		Kind: spec.Kind(), Spec: payload, ShardSize: shardSize,
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	return info
}

// awaitReport polls until the campaign reports done and returns the merged
// report bytes.
func (c *cluster) awaitReport(t *testing.T, fp string) []byte {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		raw, err := c.client().Report(context.Background(), fp)
		if err == nil {
			return raw
		}
		if !errors.Is(err, ErrNotDone) {
			t.Fatalf("report: %v", err)
		}
		if time.Now().After(deadline) {
			p, _ := c.client().Progress(context.Background(), fp)
			t.Fatalf("campaign never completed; progress %+v", p)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestFabricSingleNodeMatchesGolden(t *testing.T) {
	spec := testSpec()
	golden := goldenReport(t, spec)
	c := newCluster(t, Config{TTL: 2 * time.Second, LeaseMax: 3})
	info := c.submit(t, spec, 256)
	if info.State != "running" {
		t.Fatalf("fresh campaign state %q, want running", info.State)
	}

	node := c.node("solo", 2)
	if err := node.RunCampaign(context.Background(), info.Fingerprint); err != nil {
		t.Fatalf("node run: %v", err)
	}
	got := c.awaitReport(t, info.Fingerprint)
	if !bytes.Equal(got, golden) {
		t.Fatalf("fabric report differs from single-process golden:\n got  %s\n want %s", got, golden)
	}

	// Resubmission of a finished campaign is idempotent and reports done.
	again := c.submit(t, spec, 256)
	if again.Fingerprint != info.Fingerprint || again.State != "done" {
		t.Fatalf("resubmit = %q/%s, want done/%s", again.State, again.Fingerprint[:12], info.Fingerprint[:12])
	}
}

// TestFabricStressInProcessNodes is the -race stress satellite: {2,4,8}
// concurrent in-process nodes with varying local worker counts, merged
// report byte-identical to the golden for every cluster size
// (worker-invariance, fabric edition).
func TestFabricStressInProcessNodes(t *testing.T) {
	spec := testSpec()
	golden := goldenReport(t, spec)
	for _, nodes := range []int{2, 4, 8} {
		nodes := nodes
		t.Run(fmt.Sprintf("nodes%d", nodes), func(t *testing.T) {
			c := newCluster(t, Config{TTL: 2 * time.Second, LeaseMax: 2})
			info := c.submit(t, spec, 128)
			var wg sync.WaitGroup
			errs := make(chan error, nodes)
			for i := 0; i < nodes; i++ {
				node := c.node(fmt.Sprintf("n%d", i), 1+i%3)
				wg.Add(1)
				go func() {
					defer wg.Done()
					if err := node.RunCampaign(context.Background(), info.Fingerprint); err != nil {
						errs <- err
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatalf("node error: %v", err)
			}
			got := c.awaitReport(t, info.Fingerprint)
			if !bytes.Equal(got, golden) {
				t.Fatalf("%d-node report differs from golden", nodes)
			}
			// Every shard completion is accounted to exactly one node.
			p, err := c.client().Progress(context.Background(), info.Fingerprint)
			if err != nil {
				t.Fatal(err)
			}
			sum := 0
			for _, np := range p.Nodes {
				sum += np.Completed
			}
			if sum != p.ShardsTotal || p.ShardsComplete != p.ShardsTotal {
				t.Fatalf("per-node completions sum to %d over %d shards (%+v)", sum, p.ShardsTotal, p.Nodes)
			}
		})
	}
}

// TestFabricTypedErrorsOverWire pins the sentinel round-trip: every
// protocol failure surfaces as the package sentinel through errors.Is
// after an HTTP hop.
func TestFabricTypedErrorsOverWire(t *testing.T) {
	c := newCluster(t, Config{TTL: time.Second})
	ctx := context.Background()
	cl := c.client()

	if _, err := cl.CampaignInfo(ctx, "feedfacefeedface"); !errors.Is(err, ErrUnknownCampaign) {
		t.Errorf("unknown campaign info error = %v, want ErrUnknownCampaign", err)
	}
	if _, err := cl.Lease(ctx, LeaseRequest{Node: "n", Campaign: "feedfacefeedface"}); !errors.Is(err, ErrUnknownCampaign) {
		t.Errorf("unknown campaign lease error = %v, want ErrUnknownCampaign", err)
	}
	if _, err := cl.Submit(ctx, SubmitRequest{Kind: "no-such-kind", Spec: json.RawMessage(`{}`)}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("bad kind submit error = %v, want ErrBadRequest", err)
	}

	info := c.submit(t, testSpec(), 256)
	if _, err := cl.Report(ctx, info.Fingerprint); !errors.Is(err, ErrNotDone) {
		t.Errorf("early report error = %v, want ErrNotDone", err)
	}
	if _, err := cl.Lease(ctx, LeaseRequest{Campaign: info.Fingerprint}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("nameless lease error = %v, want ErrBadRequest", err)
	}
	if _, err := cl.Complete(ctx, CompleteRequest{Node: "n", Campaign: info.Fingerprint, Shard: 10_000}); !errors.Is(err, ErrUnknownShard) {
		t.Errorf("out-of-range complete error = %v, want ErrUnknownShard", err)
	}
}

// TestFabricCoordinatorRecoversFromDisk kills the coordinator (builds a
// fresh one over the same dir) between two halves of a campaign: journaled
// shards stay complete, unfinished ones are re-leased, and the final
// report still matches the golden.
func TestFabricCoordinatorRecoversFromDisk(t *testing.T) {
	spec := testSpec()
	golden := goldenReport(t, spec)
	c := newCluster(t, Config{TTL: 500 * time.Millisecond, LeaseMax: 2})
	info := c.submit(t, spec, 128)

	// First half: run a node until a few shards are journaled, then stop
	// it by canceling its context from the shard callback.
	ctx, cancel := context.WithCancel(context.Background())
	half := c.node("first", 1)
	var done int32
	half.OnShard = func(string, int) {
		if atomic.AddInt32(&done, 1) >= 3 {
			cancel()
		}
	}
	_ = half.RunCampaign(ctx, info.Fingerprint)
	if atomic.LoadInt32(&done) < 3 {
		t.Fatalf("first node journaled %d shards before stopping", done)
	}

	c.restart(t)

	// The recovered coordinator must know the campaign and its completed
	// shards without resubmission.
	p, err := c.client().Progress(context.Background(), info.Fingerprint)
	if err != nil {
		t.Fatalf("progress after restart: %v", err)
	}
	if p.ShardsComplete < 3 {
		t.Fatalf("restart lost journaled shards: %+v", p)
	}
	if p.ShardsComplete == p.ShardsTotal {
		t.Fatalf("campaign finished in the first half; nothing left to prove")
	}

	second := c.node("second", 2)
	if err := second.RunCampaign(context.Background(), info.Fingerprint); err != nil {
		t.Fatalf("second node: %v", err)
	}
	got := c.awaitReport(t, info.Fingerprint)
	if !bytes.Equal(got, golden) {
		t.Fatal("report after coordinator restart differs from golden")
	}
}

// TestFabricSpecMismatch pins ErrSpecMismatch end-to-end: a coordinator
// whose advertised fingerprint disagrees with the spec it hands out (a
// version-skewed or lying coordinator) is refused before the node
// simulates anything.
func TestFabricSpecMismatch(t *testing.T) {
	spec := testSpec()
	payload, err := spec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	plan, _, err := campaign.PlanCampaign(context.Background(), spec, 256)
	if err != nil {
		t.Fatal(err)
	}
	lying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, CampaignInfo{
			Fingerprint: "deadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeef",
			Kind:        spec.Kind(), Spec: payload,
			Units: plan.Units, ShardSize: plan.ShardSize, Shards: plan.Shards,
			State: "running",
		})
	}))
	defer lying.Close()
	node := &Node{ID: "n", Client: &Client{Base: lying.URL}, Dir: t.TempDir(), Workers: 1}
	err = node.RunCampaign(context.Background(), plan.Fingerprint)
	if !errors.Is(err, ErrSpecMismatch) {
		t.Fatalf("skewed coordinator error = %v, want ErrSpecMismatch", err)
	}
}

// TestFabricNodeInvalidWriter pins that a node ID unusable as a journal
// writer name fails loudly instead of writing somewhere surprising.
func TestFabricNodeInvalidWriter(t *testing.T) {
	c := newCluster(t, Config{TTL: time.Second})
	info := c.submit(t, testSpec(), 256)
	node := c.node("../evil", 1)
	err := node.RunCampaign(context.Background(), info.Fingerprint)
	if err == nil {
		t.Fatal("path-traversal writer name accepted")
	}
}
