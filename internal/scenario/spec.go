// Package scenario is the SOC workload catalog: a registry of named chip
// scenarios — builtin or user-supplied JSON specs with merge/override
// semantics — that parameterize internal/socgen into a seeded,
// deterministic chip generator.  A Spec describes *distributions* (core
// counts, scan-chain structure, IO footprints, memory geometries, resource
// budgets); Generate samples one concrete Chip from it, and the same
// (spec, seed) pair always yields the byte-identical chip.  The paper's
// Table-1 DSC controller is the fully-pinned `dsc` builtin, so the single
// case study every engine was proven on becomes one point of a population.
package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"

	"steac/internal/march"
)

// Typed errors.  Everything a malformed or malicious spec can trigger maps
// onto one of these sentinels (wrapped with detail), so callers — and the
// fuzz target — can assert failure classes with errors.Is and no spec input
// ever panics.
var (
	// ErrUnknownScenario reports a name absent from the registry.
	ErrUnknownScenario = errors.New("scenario: unknown scenario")
	// ErrBaseCycle reports a base-chain cycle (a spec inheriting, possibly
	// transitively, from itself).
	ErrBaseCycle = errors.New("scenario: base chain cycle")
	// ErrBadDistribution reports an invalid sampling distribution (min >
	// max, empty or out-of-range choices, out-of-range bounds).
	ErrBadDistribution = errors.New("scenario: bad distribution")
	// ErrDuplicateName reports duplicate core/memory/block names, either
	// between templates or between generated instances.
	ErrDuplicateName = errors.New("scenario: duplicate name")
	// ErrBadSpec reports every other structural validation failure.
	ErrBadSpec = errors.New("scenario: invalid spec")
)

// IntDist is a small integer distribution: either a uniform inclusive
// [Min, Max] range or a uniform pick from Choices.  A nil *IntDist means
// "use the generator's default" and draws nothing from the stream.
type IntDist struct {
	Min     int   `json:"min,omitempty"`
	Max     int   `json:"max,omitempty"`
	Choices []int `json:"choices,omitempty"`
}

// fixed pins a distribution to a single value.
func fixed(n int) *IntDist { return &IntDist{Min: n, Max: n} }

// span is the uniform inclusive range [lo, hi].
func span(lo, hi int) *IntDist { return &IntDist{Min: lo, Max: hi} }

// choice is the uniform pick from the given values.
func choice(vals ...int) *IntDist { return &IntDist{Choices: vals} }

// validate bounds-checks the distribution against [lo, hi].
func (d *IntDist) validate(field string, lo, hi int) error {
	if d == nil {
		return nil
	}
	if len(d.Choices) > 0 {
		for _, c := range d.Choices {
			if c < lo || c > hi {
				return fmt.Errorf("%w: %s choice %d outside %d..%d", ErrBadDistribution, field, c, lo, hi)
			}
		}
		return nil
	}
	if d.Min > d.Max {
		return fmt.Errorf("%w: %s min %d > max %d", ErrBadDistribution, field, d.Min, d.Max)
	}
	if d.Min < lo || d.Max > hi {
		return fmt.Errorf("%w: %s range %d..%d outside %d..%d", ErrBadDistribution, field, d.Min, d.Max, lo, hi)
	}
	return nil
}

// sample draws one value; a nil distribution returns def without touching
// the stream, and a pinned range draws nothing either, so adding fixed
// fields to a spec never shifts the values sampled for its other fields.
func (d *IntDist) sample(r *rand.Rand, def int) int {
	if d == nil {
		return def
	}
	if len(d.Choices) > 0 {
		return d.Choices[r.Intn(len(d.Choices))]
	}
	if d.Max <= d.Min {
		return d.Min
	}
	return d.Min + r.Intn(d.Max-d.Min+1)
}

// CoreSpec is one core template.  Count instances are stamped out per chip;
// with Count > 1 instances are named "<Name>0", "<Name>1", ....  Pin names
// follow the DSC convention ("<name>_ck", "<name>_si0", ...), which is what
// lets the fully-pinned dsc builtin reproduce Table 1 exactly.
type CoreSpec struct {
	Name string `json:"name"`
	// Count is the instance count distribution (default 1).
	Count *IntDist `json:"count,omitempty"`
	// Soft marks a soft (mergeable) core.
	Soft bool `json:"soft,omitempty"`
	// Clocks/Resets/TestEnables are control-pin count distributions
	// (defaults 1/1/0).
	Clocks      *IntDist `json:"clocks,omitempty"`
	Resets      *IntDist `json:"resets,omitempty"`
	TestEnables *IntDist `json:"test_enables,omitempty"`
	// PIs/POs are functional IO count distributions (defaults 16/16).
	PIs *IntDist `json:"pis,omitempty"`
	POs *IntDist `json:"pos,omitempty"`
	// Chains is the scan-chain count distribution (default 0 = no scan);
	// ChainLength is drawn per chain.  ChainLengths, when set, pins the
	// chain structure explicitly and overrides both.
	Chains       *IntDist `json:"chains,omitempty"`
	ChainLength  *IntDist `json:"chain_length,omitempty"`
	ChainLengths []int    `json:"chain_lengths,omitempty"`
	// SharedOuts makes the last N chains share their scan-out with a
	// functional output (clamped to the sampled chain count).
	SharedOuts int `json:"shared_outs,omitempty"`
	// ScanPatterns/FuncPatterns are pattern-count distributions (defaults
	// 64 when scanned / 0).
	ScanPatterns *IntDist `json:"scan_patterns,omitempty"`
	FuncPatterns *IntDist `json:"func_patterns,omitempty"`
	// ScanSeed/FuncSeed pin the ATPG substitute seeds (0 = derive from the
	// chip seed stream).
	ScanSeed int64 `json:"scan_seed,omitempty"`
	FuncSeed int64 `json:"func_seed,omitempty"`
	// Remove, in a derived spec, drops the base template of the same name.
	Remove bool `json:"remove,omitempty"`
}

// MemorySpec is one embedded-SRAM template; Count instances are stamped out
// with the same naming rule as cores.
type MemorySpec struct {
	Name  string   `json:"name"`
	Count *IntDist `json:"count,omitempty"`
	// Words/Bits are geometry distributions (defaults 1024/16).
	Words *IntDist `json:"words,omitempty"`
	Bits  *IntDist `json:"bits,omitempty"`
	// TwoPort pins the port kind; TwoPortFrac instead draws it per
	// instance with the given probability.
	TwoPort     bool    `json:"two_port,omitempty"`
	TwoPortFrac float64 `json:"two_port_frac,omitempty"`
	// Remove, in a derived spec, drops the base template of the same name.
	Remove bool `json:"remove,omitempty"`
}

// ResourceSpec overrides the chip test-resource budget; zero fields keep
// the base (or default) value.
type ResourceSpec struct {
	TestPins int     `json:"test_pins,omitempty"`
	FuncPins int     `json:"func_pins,omitempty"`
	MaxPower float64 `json:"max_power,omitempty"`
	// PowerBudget is the Sadredini-style per-session summed-power envelope
	// (sched.Resources.PowerBudget; 0 = unbounded).
	PowerBudget float64 `json:"power_budget,omitempty"`
	// Partitioner is "lpt", "firstfit" or "optimal".
	Partitioner string `json:"partitioner,omitempty"`
}

// BISTSpec overrides the BRAINS compilation options.
type BISTSpec struct {
	// Algorithm is a march.Catalog name (default March C-).
	Algorithm string `json:"algorithm,omitempty"`
	// Grouping is "per-memory", "by-kind" or "single" (default by-kind).
	Grouping string `json:"grouping,omitempty"`
	// Backgrounds is the data-background count (0 = engine default).
	Backgrounds int `json:"backgrounds,omitempty"`
}

// LogicBISTSpec turns scanned cores into Bernardi-style P1500 hybrid
// logic-BIST cores: a selected core keeps only a top-up fraction of its
// external scan patterns and gains a fixed-length on-chip LBIST session
// scheduled like a BIST group.
type LogicBISTSpec struct {
	// Fraction of scanned cores converted (per-core Bernoulli draw).
	Fraction float64 `json:"fraction"`
	// Patterns is the on-chip pseudo-random pattern count (default 1024).
	Patterns *IntDist `json:"patterns,omitempty"`
	// TopUp is the fraction of external scan patterns kept as determinstic
	// top-up (default 0.1, minimum one pattern).
	TopUp float64 `json:"top_up,omitempty"`
	// PowerScale scales the LBIST session power relative to the core's
	// external scan power estimate (default 1).
	PowerScale float64 `json:"power_scale,omitempty"`
}

// Spec is one named scenario.  Base names another registered scenario whose
// resolved spec this one overrides: cores and memories merge by template
// name (same name replaces, Remove deletes, new names append), Blocks merge
// by key (zero area deletes), Resources/BIST merge field-wise, LogicBIST
// replaces wholesale.
type Spec struct {
	Name        string             `json:"name"`
	Description string             `json:"description,omitempty"`
	Base        string             `json:"base,omitempty"`
	Cores       []CoreSpec         `json:"cores,omitempty"`
	Memories    []MemorySpec       `json:"memories,omitempty"`
	Blocks      map[string]float64 `json:"blocks,omitempty"`
	Resources   *ResourceSpec      `json:"resources,omitempty"`
	BIST        *BISTSpec          `json:"bist,omitempty"`
	LogicBIST   *LogicBISTSpec     `json:"logic_bist,omitempty"`
}

// ParseSpec decodes a JSON scenario spec strictly: unknown fields are
// rejected (typos in a distribution name must not silently become "use the
// default"), and every failure wraps ErrBadSpec.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	// Trailing garbage after the object is a malformed file, not an
	// extension point.
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after spec object", ErrBadSpec)
	}
	return &s, nil
}

// Structural caps.  They bound what a hostile spec can make Generate build
// (the fuzz target runs Generate on every parsed spec), and they keep every
// scenario chip in the regime the engines are tested in.
const (
	maxNameLen      = 32
	maxCoreKinds    = 32
	maxCoreCount    = 16
	maxControlPins  = 16
	maxIOs          = 2048
	maxChains       = 32
	maxChainLength  = 65536
	maxScanPatterns = 100000
	maxFuncPatterns = 1000000
	maxMemoryKinds  = 64
	maxMemoryCount  = 32
	maxMemoryWords  = 1 << 20
	maxBlocks       = 32
	maxBlockArea    = 1e9
	maxLBISTPattern = 100000
)

// identOK reports whether a name is a safe Verilog-ish identifier.
func identOK(name string) bool {
	if name == "" || len(name) > maxNameLen {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// scenarioNameOK additionally allows '-' and '.' (registry names never
// become netlist identifiers).
func scenarioNameOK(name string) bool {
	if name == "" || len(name) > 2*maxNameLen {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '_' || c == '-' || c == '.':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Validate checks a resolved spec structurally.  It is cheap (no sampling,
// no netlist work) and complete: a spec that validates cannot make Generate
// panic, only — at worst — produce a chip some engine rejects with an
// error.
func (s *Spec) Validate() error {
	if !scenarioNameOK(s.Name) {
		return fmt.Errorf("%w: bad scenario name %q", ErrBadSpec, s.Name)
	}
	if len(s.Cores) == 0 {
		return fmt.Errorf("%w: scenario %s has no core templates", ErrBadSpec, s.Name)
	}
	if len(s.Cores) > maxCoreKinds {
		return fmt.Errorf("%w: %d core templates (max %d)", ErrBadSpec, len(s.Cores), maxCoreKinds)
	}
	if len(s.Memories) > maxMemoryKinds {
		return fmt.Errorf("%w: %d memory templates (max %d)", ErrBadSpec, len(s.Memories), maxMemoryKinds)
	}
	seen := map[string]bool{}
	for i := range s.Cores {
		if err := s.Cores[i].validate(); err != nil {
			return err
		}
		low := lower(s.Cores[i].Name)
		if seen[low] {
			return fmt.Errorf("%w: core template %q (names are case-insensitively unique)", ErrDuplicateName, s.Cores[i].Name)
		}
		seen[low] = true
	}
	memSeen := map[string]bool{}
	for i := range s.Memories {
		if err := s.Memories[i].validate(); err != nil {
			return err
		}
		if memSeen[s.Memories[i].Name] {
			return fmt.Errorf("%w: memory template %q", ErrDuplicateName, s.Memories[i].Name)
		}
		memSeen[s.Memories[i].Name] = true
	}
	if len(s.Blocks) > maxBlocks {
		return fmt.Errorf("%w: %d blocks (max %d)", ErrBadSpec, len(s.Blocks), maxBlocks)
	}
	for name, area := range s.Blocks {
		if !identOK(name) || name == "pll" || name == "soc" || hasPrefix(name, "core_") {
			return fmt.Errorf("%w: bad block name %q", ErrBadSpec, name)
		}
		if area < 0 || area > maxBlockArea {
			return fmt.Errorf("%w: block %q area %g", ErrBadSpec, name, area)
		}
	}
	if r := s.Resources; r != nil {
		if r.TestPins < 0 || r.TestPins > 4096 || r.FuncPins < 0 || r.FuncPins > 1<<20 {
			return fmt.Errorf("%w: resource pin budget out of range", ErrBadSpec)
		}
		if r.MaxPower < 0 || r.PowerBudget < 0 {
			return fmt.Errorf("%w: negative power budget", ErrBadSpec)
		}
		if _, err := partitionerByName(r.Partitioner); err != nil {
			return err
		}
	}
	if b := s.BIST; b != nil {
		if b.Algorithm != "" {
			if _, ok := march.ByName(b.Algorithm); !ok {
				return fmt.Errorf("%w: unknown March algorithm %q", ErrBadSpec, b.Algorithm)
			}
		}
		if _, err := groupingByName(b.Grouping); err != nil {
			return err
		}
		if b.Backgrounds < 0 || b.Backgrounds > 8 {
			return fmt.Errorf("%w: %d BIST backgrounds (max 8)", ErrBadSpec, b.Backgrounds)
		}
	}
	if lb := s.LogicBIST; lb != nil {
		if lb.Fraction < 0 || lb.Fraction > 1 {
			return fmt.Errorf("%w: logic-BIST fraction %g outside [0,1]", ErrBadSpec, lb.Fraction)
		}
		if lb.TopUp < 0 || lb.TopUp > 1 {
			return fmt.Errorf("%w: logic-BIST top-up %g outside [0,1]", ErrBadSpec, lb.TopUp)
		}
		if lb.PowerScale < 0 || lb.PowerScale > 16 {
			return fmt.Errorf("%w: logic-BIST power scale %g outside [0,16]", ErrBadSpec, lb.PowerScale)
		}
		if err := lb.Patterns.validate("logic_bist.patterns", 1, maxLBISTPattern); err != nil {
			return err
		}
	}
	return nil
}

func (c *CoreSpec) validate() error {
	if !identOK(c.Name) {
		return fmt.Errorf("%w: bad core name %q", ErrBadSpec, c.Name)
	}
	if c.Remove {
		return nil // only the name matters for a removal marker
	}
	checks := []struct {
		d      *IntDist
		field  string
		lo, hi int
	}{
		{c.Count, c.Name + ".count", 1, maxCoreCount},
		{c.Clocks, c.Name + ".clocks", 1, maxControlPins},
		{c.Resets, c.Name + ".resets", 0, maxControlPins},
		{c.TestEnables, c.Name + ".test_enables", 0, maxControlPins},
		{c.PIs, c.Name + ".pis", 0, maxIOs},
		{c.POs, c.Name + ".pos", 0, maxIOs},
		{c.Chains, c.Name + ".chains", 0, maxChains},
		{c.ChainLength, c.Name + ".chain_length", 1, maxChainLength},
		{c.ScanPatterns, c.Name + ".scan_patterns", 0, maxScanPatterns},
		{c.FuncPatterns, c.Name + ".func_patterns", 0, maxFuncPatterns},
	}
	for _, ck := range checks {
		if err := ck.d.validate(ck.field, ck.lo, ck.hi); err != nil {
			return err
		}
	}
	if len(c.ChainLengths) > maxChains {
		return fmt.Errorf("%w: %s has %d explicit chains (max %d)", ErrBadSpec, c.Name, len(c.ChainLengths), maxChains)
	}
	for _, l := range c.ChainLengths {
		if l < 1 || l > maxChainLength {
			return fmt.Errorf("%w: %s explicit chain length %d", ErrBadSpec, c.Name, l)
		}
	}
	if c.SharedOuts < 0 || c.SharedOuts > maxChains {
		return fmt.Errorf("%w: %s shared_outs %d", ErrBadSpec, c.Name, c.SharedOuts)
	}
	return nil
}

func (m *MemorySpec) validate() error {
	if !identOK(m.Name) {
		return fmt.Errorf("%w: bad memory name %q", ErrBadSpec, m.Name)
	}
	if m.Remove {
		return nil
	}
	checks := []struct {
		d      *IntDist
		field  string
		lo, hi int
	}{
		{m.Count, m.Name + ".count", 1, maxMemoryCount},
		{m.Words, m.Name + ".words", 1, maxMemoryWords},
		{m.Bits, m.Name + ".bits", 1, 64},
	}
	for _, ck := range checks {
		if err := ck.d.validate(ck.field, ck.lo, ck.hi); err != nil {
			return err
		}
	}
	if m.TwoPortFrac < 0 || m.TwoPortFrac > 1 {
		return fmt.Errorf("%w: %s two_port_frac %g outside [0,1]", ErrBadSpec, m.Name, m.TwoPortFrac)
	}
	return nil
}

func lower(s string) string {
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		out[i] = c
	}
	return string(out)
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }
