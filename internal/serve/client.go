package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"steac/internal/catalog"
	"steac/internal/recommend"
)

// Client is the typed Go client for the daemon's v1 API — the reference
// consumer of the error-envelope contract.  Every non-2xx response is
// decoded from the {"error","code"} envelope and surfaced as the matching
// package sentinel wrapped around the server's message, so callers branch
// with errors.Is(err, serve.ErrQuotaExceeded) instead of string-matching
// status text:
//
//	c := &serve.Client{Base: "http://127.0.0.1:8741", APIKey: key}
//	res, cached, err := c.Flow(ctx, serve.FlowRequest{Chip: "dsc"})
//	if errors.Is(err, serve.ErrUnauthorized) { ... }
type Client struct {
	// Base is the daemon root, e.g. "http://127.0.0.1:8741".
	Base string
	// APIKey authenticates every request (Authorization: Bearer).  Empty
	// is fine against an anonymous-mode daemon.
	APIKey string
	// HTTP overrides the transport (nil = http.DefaultClient).
	HTTP *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do runs one request and decodes the response into out (ignored when
// nil), reconstructing typed errors from the wire envelope.
func (c *Client) do(ctx context.Context, method, path string, body, out interface{}) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.APIKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.APIKey)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return resp, err
	}
	if resp.StatusCode/100 != 2 {
		return resp, decodeClientError(resp.StatusCode, blob)
	}
	if out != nil {
		if err := json.Unmarshal(blob, out); err != nil {
			return resp, fmt.Errorf("serve: client: bad response body: %w", err)
		}
	}
	return resp, nil
}

// decodeClientError rebuilds the typed error for one non-2xx response.
// Responses without a parsable envelope (a proxy error page, an old
// daemon) degrade to a plain error carrying the status.
func decodeClientError(status int, blob []byte) error {
	var we wireError
	if err := json.Unmarshal(blob, &we); err == nil && we.Code != "" {
		if sentinel := codeSentinel(we.Code); sentinel != nil {
			return fmt.Errorf("%w: %s", sentinel, we.Error)
		}
		return fmt.Errorf("serve: %s (%s)", we.Error, we.Code)
	}
	return fmt.Errorf("serve: http %d: %s", status, bytes.TrimSpace(blob))
}

// endpoint runs one synchronous compute request, returning the decoded
// result and whether it was served from the daemon's memo cache.
func endpoint[Req any, Resp any](ctx context.Context, c *Client, path string, req Req) (*Resp, bool, error) {
	var env response
	if _, err := c.do(ctx, http.MethodPost, path, req, &env); err != nil {
		return nil, false, err
	}
	out := new(Resp)
	if err := json.Unmarshal(env.Result, out); err != nil {
		return nil, false, fmt.Errorf("serve: client: bad %s result: %w", path, err)
	}
	return out, env.Cached, nil
}

// Flow runs POST /v1/flow.
func (c *Client) Flow(ctx context.Context, req FlowRequest) (*FlowResponse, bool, error) {
	return endpoint[FlowRequest, FlowResponse](ctx, c, "/v1/flow", req)
}

// Sched runs POST /v1/sched.
func (c *Client) Sched(ctx context.Context, req SchedRequest) (*SchedResponse, bool, error) {
	return endpoint[SchedRequest, SchedResponse](ctx, c, "/v1/sched", req)
}

// Memfault runs POST /v1/memfault.
func (c *Client) Memfault(ctx context.Context, req MemfaultRequest) (*MemfaultResponse, bool, error) {
	return endpoint[MemfaultRequest, MemfaultResponse](ctx, c, "/v1/memfault", req)
}

// XCheck runs POST /v1/xcheck.
func (c *Client) XCheck(ctx context.Context, req XCheckRequest) (*XCheckResponse, bool, error) {
	return endpoint[XCheckRequest, XCheckResponse](ctx, c, "/v1/xcheck", req)
}

// SubmitJob runs POST /v1/jobs: submit (or rejoin) an async campaign job.
func (c *Client) SubmitJob(ctx context.Context, req JobRequest) (JobStatus, error) {
	var st JobStatus
	_, err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &st)
	return st, err
}

// Job runs GET /v1/jobs/{id}.
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	_, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// CancelJob runs DELETE /v1/jobs/{id}.
func (c *Client) CancelJob(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	_, err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// catalogQueryString encodes the shared catalog listing filters.  Tenant
// is deliberately ignored: the daemon scopes every catalog request to the
// authenticated identity.
func catalogQueryString(q catalog.Query) string {
	v := url.Values{}
	if q.Scenario != "" {
		v.Set("scenario", q.Scenario)
	}
	if q.Kind != "" {
		v.Set("kind", q.Kind)
	}
	if q.MinCoverage > 0 {
		v.Set("min_coverage", strconv.FormatFloat(q.MinCoverage, 'g', -1, 64))
	}
	if q.MaxCoverage > 0 {
		v.Set("max_coverage", strconv.FormatFloat(q.MaxCoverage, 'g', -1, 64))
	}
	if q.Limit > 0 {
		v.Set("limit", strconv.Itoa(q.Limit))
	}
	if len(v) == 0 {
		return ""
	}
	return "?" + v.Encode()
}

// Catalog runs GET /v1/catalog: list the caller's catalog records.
func (c *Client) Catalog(ctx context.Context, q catalog.Query) (*CatalogResponse, error) {
	var out CatalogResponse
	_, err := c.do(ctx, http.MethodGet, "/v1/catalog"+catalogQueryString(q), nil, &out)
	return &out, err
}

// CatalogRecord runs GET /v1/catalog/{fingerprint}.
func (c *Client) CatalogRecord(ctx context.Context, fingerprint string) (*catalog.Record, error) {
	var rec catalog.Record
	_, err := c.do(ctx, http.MethodGet, "/v1/catalog/"+url.PathEscape(fingerprint), nil, &rec)
	return &rec, err
}

// CatalogCompare runs GET /v1/catalog/compare and returns the rendered
// table verbatim.  format is "json", "csv" or "html" ("" = json).
func (c *Client) CatalogCompare(ctx context.Context, format string, q catalog.Query) ([]byte, error) {
	path := "/v1/catalog/compare" + catalogQueryString(q)
	if format != "" {
		sep := "?"
		if len(path) > len("/v1/catalog/compare") {
			sep = "&"
		}
		path += sep + "format=" + url.QueryEscape(format)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
	if err != nil {
		return nil, err
	}
	if c.APIKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.APIKey)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, decodeClientError(resp.StatusCode, blob)
	}
	return blob, nil
}

// Recommend runs POST /v1/recommend.
func (c *Client) Recommend(ctx context.Context, req RecommendRequest) (*recommend.Suggestion, error) {
	var sug recommend.Suggestion
	_, err := c.do(ctx, http.MethodPost, "/v1/recommend", req, &sug)
	return &sug, err
}

// WaitJob polls GET /v1/jobs/{id} every interval (0 = 250ms) until the job
// reaches a terminal state or ctx expires.  onStatus, when non-nil, sees
// every polled status — progress displays hook in here.  A job that ends
// failed or canceled is returned with a nil error; deciding whether that
// is a failure belongs to the caller.
func (c *Client) WaitJob(ctx context.Context, id string, interval time.Duration, onStatus func(JobStatus)) (JobStatus, error) {
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		if onStatus != nil {
			onStatus(st)
		}
		switch st.State {
		case jobDone, jobFailed, jobCanceled, jobCheckpointed:
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-ticker.C:
		}
	}
}
