package pattern

import (
	"context"
	"testing"

	"steac/internal/sched"
	"steac/internal/testinfo"
	"steac/internal/wrapper"
)

// tinyScheduled builds a one-core schedule small enough to verify the
// translated cycle stream by hand.
func tinyScheduled(t *testing.T) (*testinfo.Core, *sched.Schedule, sched.Resources, *ATPG) {
	t.Helper()
	core := &testinfo.Core{
		Name:        "T",
		Clocks:      []string{"ck"},
		ScanEnables: []string{"se"},
		PIs:         1, POs: 1,
		ScanChains: []testinfo.ScanChain{{Name: "c0", Length: 2, In: "si", Out: "so", Clock: "ck"}},
		Patterns:   []testinfo.PatternSet{{Name: "s", Type: testinfo.Scan, Count: 1, Seed: 3}},
	}
	// Shared control = 1 clock + 1 SE + 4 BIST pins = 6, leaving exactly
	// one TAM wire so the hand analysis below holds.
	res := sched.Resources{TestPins: 8, FuncPins: 4, Partitioner: wrapper.LPT}
	tests, err := sched.BuildTests([]*testinfo.Core{core}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.SessionBasedContext(context.Background(), tests, res)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewATPG(core)
	if err != nil {
		t.Fatal(err)
	}
	return core, s, res, src
}

// TestStreamGolden verifies the translated cycle stream bit for bit against
// the wrapper-chain image computed by hand: the single wrapper chain is
// [in-cell, seg0, seg1, out-cell] (L=4), so the test runs (L+1)·1 + L = 9
// cycles — 4 load shifts, 1 capture, 4 unload shifts.
func TestStreamGolden(t *testing.T) {
	core, s, res, src := tinyScheduled(t)
	prog, err := Translate(s, map[string]Source{"T": src}, res)
	if err != nil {
		t.Fatal(err)
	}
	if prog.TamWidth != 1 {
		t.Fatalf("tam width = %d", prog.TamWidth)
	}
	layout := prog.Sessions[0]
	if layout.Cycles != 9 {
		t.Fatalf("session cycles = %d, want 9", layout.Cycles)
	}
	p, err := src.ScanPattern(0)
	if err != nil {
		t.Fatal(err)
	}
	// Chain content (cell 0 nearest TAM-in): [PI, load0, load1, X];
	// post-capture: [0, next0, next1, PO].
	load := []Bit{FromBool(p.PI[0]), FromBool(p.Load[0][0]), FromBool(p.Load[0][1]), BX}
	post := []Bit{B0, FromBool(p.ExpectUnload[0][0]), FromBool(p.ExpectUnload[0][1]), FromBool(p.ExpectPO[0])}

	type rec struct {
		in, exp Bit
		action  CoreAction
	}
	var got []rec
	err = prog.Stream(layout, func(c int, cyc *Cycle) bool {
		got = append(got, rec{cyc.TamIn[0], cyc.TamExpect[0], cyc.Actions["T"]})
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 9 {
		t.Fatalf("streamed %d cycles", len(got))
	}
	// Load shifts drive load[3-k] (deepest cell first); no expectations
	// during the first load (nothing unloads yet).
	for k := 0; k < 4; k++ {
		if got[k].action != ActShift {
			t.Fatalf("cycle %d: action %v", k, got[k].action)
		}
		if got[k].in != load[3-k] {
			t.Fatalf("cycle %d: drive %v, want %v", k, got[k].in, load[3-k])
		}
		if got[k].exp != BX {
			t.Fatalf("cycle %d: unexpected compare %v", k, got[k].exp)
		}
	}
	if got[4].action != ActCapture {
		t.Fatalf("cycle 4: action %v, want capture", got[4].action)
	}
	// Final unload: expect post[3-k] (cell nearest TAM-out first).
	for k := 0; k < 4; k++ {
		c := got[5+k]
		if c.action != ActShift {
			t.Fatalf("unload cycle %d: action %v", k, c.action)
		}
		if c.exp != post[3-k] {
			t.Fatalf("unload cycle %d: expect %v, want %v", k, c.exp, post[3-k])
		}
	}
	_ = core
}

func TestTranslateErrors(t *testing.T) {
	core, s, res, src := tinyScheduled(t)
	// Missing source.
	if _, err := Translate(s, map[string]Source{}, res); err == nil {
		t.Fatal("missing source accepted")
	}
	// Tampered cycle count must be caught.
	bad := *s
	bad.Sessions = append([]sched.Session(nil), s.Sessions...)
	bad.Sessions[0].Placements = append([]sched.Placement(nil), s.Sessions[0].Placements...)
	bad.Sessions[0].Placements[0].Cycles += 5
	if _, err := Translate(&bad, map[string]Source{"T": src}, res); err == nil {
		t.Fatal("tampered scan cycles accepted")
	}
	_ = core
}

func TestTranslateFuncErrors(t *testing.T) {
	core := &testinfo.Core{
		Name:   "F",
		Clocks: []string{"ck"},
		PIs:    4, POs: 2,
		Patterns: []testinfo.PatternSet{{Name: "f", Type: testinfo.Functional, Count: 3, Seed: 1}},
	}
	res := sched.Resources{TestPins: 8, FuncPins: 6, Partitioner: wrapper.LPT}
	tests, err := sched.BuildTests([]*testinfo.Core{core}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.SessionBasedContext(context.Background(), tests, res)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewATPG(core)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Translate(s, map[string]Source{"F": src}, res)
	if err != nil {
		t.Fatal(err)
	}
	// 6 granted pins for need 6 -> 1 cycle per pattern.
	if prog.Sessions[0].Cycles != 3 {
		t.Fatalf("cycles = %d", prog.Sessions[0].Cycles)
	}
	// Zero granted pins must be rejected.
	bad := *s
	bad.Sessions = append([]sched.Session(nil), s.Sessions...)
	bad.Sessions[0].Placements = append([]sched.Placement(nil), s.Sessions[0].Placements...)
	bad.Sessions[0].Placements[0].FuncPins = 0
	if _, err := Translate(&bad, map[string]Source{"F": src}, res); err == nil {
		t.Fatal("zero func pins accepted")
	}
}

func TestAllocatorReuse(t *testing.T) {
	a := newAllocator(4)
	lo1, err := a.alloc(3, 0, 10)
	if err != nil || lo1 != 0 {
		t.Fatalf("first alloc = %d, %v", lo1, err)
	}
	// Overlapping interval: only 1 unit left.
	if _, err := a.alloc(2, 5, 10); err == nil {
		t.Fatal("overlapping oversubscription accepted")
	}
	lo2, err := a.alloc(1, 5, 5)
	if err != nil || lo2 != 3 {
		t.Fatalf("fit in gap = %d, %v", lo2, err)
	}
	// After t=10 everything is free again.
	lo3, err := a.alloc(4, 10, 5)
	if err != nil || lo3 != 0 {
		t.Fatalf("reuse after expiry = %d, %v", lo3, err)
	}
	if _, err := a.alloc(0, 0, 1); err == nil {
		t.Fatal("zero-size alloc accepted")
	}
}
