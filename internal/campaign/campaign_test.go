package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"steac/internal/memory"
)

// testSpec is the standard small campaign the battery runs: the full
// generated fault universe of a 64x4 single-port RAM under March C-
// (a few thousand microsecond faults — big enough for many shards, small
// enough for -race).
func testSpec() *CoverageSpec {
	return &CoverageSpec{
		Algorithm: "March C-",
		Config:    memory.Config{Name: "t0", Words: 64, Bits: 4, Kind: memory.SinglePort},
		AllFaults: true,
	}
}

// reportJSON runs the campaign and returns the marshaled report — the
// byte-identity currency of the whole battery.
func reportJSON(t *testing.T, res *Result) []byte {
	t.Helper()
	b, err := json.Marshal(res.Report)
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	return b
}

// goldenRun executes the spec uninterrupted and in memory.
func goldenRun(t *testing.T, spec Spec) []byte {
	t.Helper()
	res, err := Run(context.Background(), spec, Options{})
	if err != nil {
		t.Fatalf("golden run: %v", err)
	}
	return reportJSON(t, res)
}

func TestRunEmptyCampaign(t *testing.T) {
	spec := &CoverageSpec{
		Algorithm: "March C-",
		Config:    memory.Config{Name: "t0", Words: 16, Bits: 2, Kind: memory.SinglePort},
		// No faults at all.
	}
	res, err := Run(context.Background(), spec, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Shards != 0 || res.Resumed != 0 {
		t.Fatalf("empty campaign: got %d shards, %d resumed", res.Shards, res.Resumed)
	}
}

func TestFingerprintDistinguishesSpecs(t *testing.T) {
	a, err := Fingerprint(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	changed := testSpec()
	changed.Config.Words = 32
	b, err := Fingerprint(changed)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("different specs share a fingerprint")
	}
	again, _ := Fingerprint(testSpec())
	if a != again {
		t.Fatal("fingerprint is not stable")
	}
}

// TestKillAndResumeEquivalence is the core crash-safety property: cancel a
// checkpointed campaign at randomized shard boundaries, resume it from the
// directory, and require the final report to be byte-identical to an
// uninterrupted run.  The cut points are drawn from a fixed seed so the
// table is reproducible yet not hand-picked.
func TestKillAndResumeEquivalence(t *testing.T) {
	spec := testSpec()
	golden := goldenRun(t, spec)

	probe, err := Run(context.Background(), spec, Options{ShardSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	totalShards := probe.Shards
	if totalShards < 8 {
		t.Fatalf("test spec too small: %d shards", totalShards)
	}

	rng := rand.New(rand.NewSource(5))
	cuts := []int{1, totalShards - 1} // always include the boundary cases
	for len(cuts) < 7 {
		cuts = append(cuts, 1+rng.Intn(totalShards-1))
	}

	for _, cut := range cuts {
		cut := cut
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			ctx, cancel := context.WithCancelCause(context.Background())
			defer cancel(nil)
			_, err := Run(ctx, spec, Options{
				ShardSize: 64,
				Workers:   4,
				Dir:       dir,
				OnShard: func(ev ShardEvent) {
					if ev.Done >= cut {
						cancel(errors.New("cut point reached"))
					}
				},
			})
			if err == nil {
				t.Fatalf("interrupted run at cut %d returned no error", cut)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("interrupted run: got %v, want context.Canceled", err)
			}

			info, err := Inspect(dir)
			if err != nil {
				t.Fatalf("Inspect after cancel: %v", err)
			}
			if info.ShardsDone < cut {
				t.Fatalf("journal holds %d shards, cut was at %d", info.ShardsDone, cut)
			}

			res, err := Run(context.Background(), spec, Options{
				ShardSize: 64,
				Workers:   4,
				Dir:       dir,
			})
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			if res.Resumed < cut {
				t.Fatalf("resume replayed %d shards, expected at least %d", res.Resumed, cut)
			}
			if got := reportJSON(t, res); !bytes.Equal(got, golden) {
				t.Fatalf("resumed report differs from golden:\n got  %s\n want %s", got, golden)
			}
		})
	}
}

// TestResumeShardSizeMismatch checks that the manifest's shard geometry
// wins on resume: a checkpoint written with one shard size must resume
// correctly under a different requested size.
func TestResumeShardSizeMismatch(t *testing.T) {
	spec := testSpec()
	golden := goldenRun(t, spec)
	dir := t.TempDir()

	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	_, err := Run(ctx, spec, Options{ShardSize: 32, Dir: dir, OnShard: func(ev ShardEvent) {
		if ev.Done >= 3 {
			cancel(errors.New("cut"))
		}
	}})
	if err == nil {
		t.Fatal("interrupted run returned no error")
	}

	res, err := Run(context.Background(), spec, Options{ShardSize: 512, Dir: dir})
	if err != nil {
		t.Fatalf("resume with different shard size: %v", err)
	}
	if res.Resumed < 3 {
		t.Fatalf("resume replayed %d shards, want >= 3", res.Resumed)
	}
	if got := reportJSON(t, res); !bytes.Equal(got, golden) {
		t.Fatal("resume with different requested shard size changed the report")
	}
}

// TestRunCanceledBeforeStart checks the degenerate cut point: a context
// canceled before any shard completes still leaves a resumable checkpoint.
func TestRunCanceledBeforeStart(t *testing.T) {
	spec := testSpec()
	golden := goldenRun(t, spec)
	dir := t.TempDir()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, spec, Options{ShardSize: 64, Dir: dir}); err == nil {
		t.Fatal("pre-canceled run returned no error")
	}

	res, err := Run(context.Background(), spec, Options{ShardSize: 64, Dir: dir})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if got := reportJSON(t, res); !bytes.Equal(got, golden) {
		t.Fatal("resume after pre-canceled run changed the report")
	}
}

// sigkillEnvDir is the handshake for the SIGKILL subprocess test below.
const sigkillEnvDir = "STEAC_CAMPAIGN_SIGKILL_DIR"

// TestSigkillHelper is not a test: it is the victim process body for
// TestResumeAfterSIGKILL, entered only when the env handshake is set.  It
// runs the standard campaign into the given checkpoint directory, paced so
// the parent can observe journal growth and kill it mid-flight.
func TestSigkillHelper(t *testing.T) {
	dir := os.Getenv(sigkillEnvDir)
	if dir == "" {
		t.Skip("subprocess helper; driven by TestResumeAfterSIGKILL")
	}
	_, err := Run(context.Background(), testSpec(), Options{
		ShardSize: 32,
		Workers:   2,
		Dir:       dir,
		OnShard:   func(ShardEvent) { time.Sleep(10 * time.Millisecond) },
	})
	// The parent SIGKILLs us mid-run; reaching here just means it was
	// slow.  Either way there is nothing to assert in this process.
	_ = err
}

// TestResumeAfterSIGKILL is the real-crash variant of the resume
// equivalence property: a child process running the campaign is killed
// with SIGKILL (no deferred cleanup, no journal close), and a resume from
// its checkpoint directory must still produce the golden report.
func TestResumeAfterSIGKILL(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("SIGKILL subprocess test is linux-only")
	}
	if testing.Short() {
		t.Skip("subprocess test skipped in -short")
	}
	spec := testSpec()
	golden := goldenRun(t, spec)
	dir := t.TempDir()

	cmd := exec.Command(os.Args[0], "-test.run", "TestSigkillHelper$")
	cmd.Env = append(os.Environ(), sigkillEnvDir+"="+dir)
	if err := cmd.Start(); err != nil {
		t.Fatalf("start helper: %v", err)
	}

	// Wait for the journal to accumulate a few entries, then kill without
	// ceremony.
	journal := filepath.Join(dir, "journal.jsonl")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if raw, err := os.ReadFile(journal); err == nil && bytes.Count(raw, []byte("\n")) >= 3 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal("helper produced no journal entries within deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("kill helper: %v", err)
	}
	cmd.Wait() // reap; exit status is expected to be the kill

	info, err := Inspect(dir)
	if err != nil {
		t.Fatalf("Inspect after SIGKILL: %v", err)
	}
	if info.ShardsDone == 0 {
		t.Fatal("no shards survived the kill")
	}
	t.Logf("killed with %d/%d shards journaled (%d repaired)",
		info.ShardsDone, info.Shards, info.Repaired)

	res, err := Run(context.Background(), spec, Options{ShardSize: 32, Dir: dir})
	if err != nil {
		t.Fatalf("resume after SIGKILL: %v", err)
	}
	if res.Resumed == 0 {
		t.Fatal("resume simulated everything from scratch")
	}
	if got := reportJSON(t, res); !bytes.Equal(got, golden) {
		t.Fatal("report after SIGKILL resume differs from uninterrupted run")
	}
}

// TestLoadSpecRoundTrip checks that a checkpoint directory is
// self-describing: LoadSpec must reconstruct a spec whose fingerprint (and
// hence report) matches the original.
func TestLoadSpecRoundTrip(t *testing.T) {
	spec := testSpec()
	dir := t.TempDir()
	if _, err := Run(context.Background(), spec, Options{ShardSize: 128, Dir: dir}); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSpec(dir)
	if err != nil {
		t.Fatalf("LoadSpec: %v", err)
	}
	want, _ := Fingerprint(spec)
	got, err := Fingerprint(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round-tripped fingerprint %s != original %s", got[:12], want[:12])
	}
}
