package campaign

import (
	"context"
	"encoding/json"
	"fmt"

	"steac/internal/march"
	"steac/internal/memfault"
	"steac/internal/memory"
	"steac/internal/scenario"
)

// KindMemfault tags March coverage campaign specs in manifests and job
// requests.
const KindMemfault = "memfault"

func init() {
	RegisterKind(KindMemfault, func(payload json.RawMessage) (Spec, error) {
		var s CoverageSpec
		if err := json.Unmarshal(payload, &s); err != nil {
			return nil, err
		}
		return &s, nil
	})
}

// CoverageSpec describes one memfault March coverage campaign.  Every
// field is semantic — it changes the report — and is therefore part of the
// canonical payload hashed into the campaign fingerprint; execution tuning
// (workers, shard size, checkpoint dir) lives in Options instead.
type CoverageSpec struct {
	// Algorithm is the march.Catalog name ("March C-", ...).  With a
	// Scenario it may be left empty, defaulting to the chip's BIST plan.
	Algorithm string `json:"algorithm,omitempty"`
	// Config is the memory under test.  Alternatively Scenario + ChipSeed +
	// Memory name a macro on a generated scenario chip; the two forms are
	// mutually exclusive.
	Config memory.Config `json:"config,omitempty"`
	// Scenario/ChipSeed regenerate a scenario chip; Memory names one of its
	// macros.  All three are semantic (fingerprinted): the same checkpoint
	// always regrades the same macro.
	Scenario string `json:"scenario,omitempty"`
	ChipSeed int64  `json:"chip_seed,omitempty"`
	Memory   string `json:"memory,omitempty"`
	// AllFaults selects the full generated fault universe for Config.
	AllFaults bool `json:"all_faults,omitempty"`
	// Faults is an explicit fault list (ignored when AllFaults is set).
	Faults []memfault.Fault `json:"faults,omitempty"`
	// Backgrounds and PauseBefore mirror memfault.Options.
	Backgrounds []uint64 `json:"backgrounds,omitempty"`
	PauseBefore []int    `json:"pause_before,omitempty"`
	// MaxUndetected caps the survivors kept in the report (0 = default 32,
	// negative = keep all).  It shapes the report, so it is semantic.
	MaxUndetected int `json:"max_undetected,omitempty"`
}

// Kind implements Spec.
func (s *CoverageSpec) Kind() string { return KindMemfault }

// Marshal implements Spec: the canonical payload is the JSON encoding of
// the spec struct itself (fixed field order, omitted zero fields).
func (s *CoverageSpec) Marshal() (json.RawMessage, error) {
	return json.Marshal(s)
}

func (s *CoverageSpec) options() memfault.Options {
	return memfault.Options{
		Backgrounds:   s.Backgrounds,
		PauseBefore:   s.PauseBefore,
		MaxUndetected: s.MaxUndetected,
	}
}

// Prepare implements Spec: resolve the memory under test (inline config or
// scenario macro) and the algorithm, build the fault list, and precompute
// the golden traces.
func (s *CoverageSpec) Prepare(context.Context) (Executor, error) {
	cfg, algName := s.Config, s.Algorithm
	if s.Scenario != "" {
		if cfg.Name != "" {
			return nil, fmt.Errorf("campaign: both config %q and scenario %q set", cfg.Name, s.Scenario)
		}
		chip, err := scenario.GenerateByName(s.Scenario, s.ChipSeed)
		if err != nil {
			return nil, err
		}
		if cfg, err = chipMemory(chip, s.Memory); err != nil {
			return nil, err
		}
		if algName == "" {
			algName = chipAlgorithm(chip)
		}
	}
	alg, ok := march.ByName(algName)
	if !ok {
		return nil, fmt.Errorf("campaign: unknown march algorithm %q", algName)
	}
	sim, err := memfault.NewCoverageSim(alg, cfg, s.options())
	if err != nil {
		return nil, err
	}
	faults := s.Faults
	if s.AllFaults {
		faults = memfault.AllFaults(cfg)
	}
	return &coverageExecutor{spec: s, sim: sim, faults: faults}, nil
}

type coverageExecutor struct {
	spec   *CoverageSpec
	sim    *memfault.CoverageSim
	faults []memfault.Fault
}

func (e *coverageExecutor) Units() int { return len(e.faults) }

// BatchSize aligns shard sizes to the bit-plane engine's lane count, so
// shard interiors split into full 64-fault words.
func (e *coverageExecutor) BatchSize() int { return memfault.PackedLanes }

func (e *coverageExecutor) NewWorker() (Worker, error) {
	w, err := e.sim.NewPackedWorker()
	if err != nil {
		return nil, err
	}
	return &coverageWorker{exec: e, w: w}, nil
}

// Assemble maps the outcome vector (1 = detected) through the engine's own
// aggregation path, so the report is bit-identical to CoverageContext.
func (e *coverageExecutor) Assemble(out []int64) (interface{}, error) {
	detected := make([]bool, len(out))
	for i, v := range out {
		detected[i] = v != 0
	}
	return memfault.Assemble(e.sim.Algorithm(), e.faults, detected, e.spec.options()), nil
}

type coverageWorker struct {
	exec *coverageExecutor
	w    *memfault.PackedWorker
	det  [memfault.PackedLanes]bool
	errs [memfault.PackedLanes]error
}

// Run simulates the shard's faults in word-parallel batches of PackedLanes
// (the engine falls back to per-fault scalar machines for unpackable
// kinds).  Each batch is microseconds to low milliseconds, the natural ctx
// poll granularity — the same cadence the in-process engine uses.
func (cw *coverageWorker) Run(ctx context.Context, lo, hi int, out []int64) error {
	for start := lo; start < hi; start += memfault.PackedLanes {
		if err := ctx.Err(); err != nil {
			return err
		}
		end := start + memfault.PackedLanes
		if end > hi {
			end = hi
		}
		n := end - start
		cw.w.DetectBatch(cw.exec.faults[start:end], cw.det[:n], cw.errs[:n])
		for i := 0; i < n; i++ {
			if err := cw.errs[i]; err != nil {
				return err
			}
			if cw.det[i] {
				out[start-lo+i] = 1
			}
		}
	}
	return nil
}
