package memfault

import (
	"steac/internal/march"
	"steac/internal/memory"
)

// goldenTrace is the precomputed fault-free reference of one March run: the
// full access stream of an algorithm over a memory geometry, the data word
// carried by every write, the expected value of every read, and the
// retention-pause points.  The golden behaviour is independent of the
// injected faults, so a campaign computes the trace once and shares it
// read-only across all simulation workers — this removes the per-fault
// golden memory, its duplicate algorithm walk, and the per-access golden
// read/write of the original simulator.
type goldenTrace struct {
	accesses []march.Access
	// vals[i] is the data written by access i (writes) or the expected
	// fault-free value (reads).
	vals []uint64
	// pause[i] marks a retention pause immediately before access i (the
	// first access of a March element listed in Options.PauseBefore).
	pause []bool
}

// buildTrace expands alg over cfg once, replaying it against golden to
// record the reference values.  golden must be in power-on (all-zero) state
// and is left dirty.
func buildTrace(alg march.Algorithm, cfg memory.Config, golden *memory.SRAM, bg uint64, pauseBefore map[int]bool) *goldenTrace {
	n := alg.Length(cfg.Words)
	tr := &goldenTrace{
		accesses: make([]march.Access, 0, n),
		vals:     make([]uint64, 0, n),
		pause:    make([]bool, 0, n),
	}
	bg &= cfg.Mask()
	inv := ^bg & cfg.Mask()
	lastElem := -1
	alg.Walk(cfg.Words, func(acc march.Access) bool {
		p := false
		if acc.Elem != lastElem {
			lastElem = acc.Elem
			p = pauseBefore[acc.Elem]
		}
		var v uint64
		if acc.Op.Read {
			v = golden.Read(acc.Addr)
		} else {
			if acc.Op.Value == 0 {
				v = bg
			} else {
				v = inv
			}
			golden.Write(acc.Addr, v)
		}
		tr.accesses = append(tr.accesses, acc)
		tr.vals = append(tr.vals, v)
		tr.pause = append(tr.pause, p)
		return true
	})
	return tr
}

// tracesFor builds one golden trace per data background of opt.  The
// algorithm must already be validated.
func tracesFor(alg march.Algorithm, cfg memory.Config, opt Options) ([]*goldenTrace, error) {
	golden, err := memory.New(cfg)
	if err != nil {
		return nil, err
	}
	pauseBefore := make(map[int]bool, len(opt.PauseBefore))
	for _, e := range opt.PauseBefore {
		pauseBefore[e] = true
	}
	bgs := opt.Backgrounds
	if len(bgs) == 0 {
		bgs = []uint64{opt.Background}
	}
	traces := make([]*goldenTrace, 0, len(bgs))
	for i, bg := range bgs {
		if i > 0 {
			golden.Reset()
		}
		traces = append(traces, buildTrace(alg, cfg, golden, bg, pauseBefore))
	}
	return traces, nil
}

// replay applies the trace to a fault-injected memory and reports the first
// read mismatch.  OpIndex is the position in the access stream, matching
// the serial simulator exactly.
func (tr *goldenTrace) replay(m *FaultyRAM) Detection {
	for i := range tr.accesses {
		acc := tr.accesses[i]
		if tr.pause[i] {
			m.Pause()
		}
		if acc.Op.Read {
			got := m.Read(acc.Addr)
			if want := tr.vals[i]; got != want {
				return Detection{Detected: true, OpIndex: i, Access: acc, Expected: want, Got: got}
			}
		} else {
			m.Write(acc.Addr, tr.vals[i])
		}
	}
	return Detection{}
}
