package fabric

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// Wire types for the /v1/fabric/* protocol.  Everything is plain JSON over
// HTTP; errors travel as {"error": "...", "code": "..."} where code is the
// machine-readable name of one of the package sentinels, so a client can
// reconstruct the typed error across the wire.

// SubmitRequest submits a campaign to the coordinator — the same
// kind+spec envelope the local job API uses.
type SubmitRequest struct {
	Kind      string          `json:"kind"`
	Spec      json.RawMessage `json:"spec"`
	ShardSize int             `json:"shard_size,omitempty"`
	// Tenant is the submitting tenant's id, recorded on the campaign for
	// attribution (the serve layer enforces visibility; the fabric
	// protocol itself is intra-cluster and unauthenticated).
	Tenant string `json:"tenant,omitempty"`
}

// CampaignInfo describes a campaign the coordinator tracks: the full plan
// geometry plus its lifecycle state ("running" or "done").
type CampaignInfo struct {
	Fingerprint string          `json:"fingerprint"`
	Kind        string          `json:"kind"`
	Spec        json.RawMessage `json:"spec"`
	Units       int             `json:"units"`
	ShardSize   int             `json:"shard_size"`
	Shards      int             `json:"shards"`
	State       string          `json:"state"`
	// Tenant is the first submitter's tenant id (empty for campaigns
	// submitted before tenancy or recovered from bare checkpoints).
	Tenant string `json:"tenant,omitempty"`
}

// LeaseRequest asks for up to Max shards of Campaign on behalf of Node.
type LeaseRequest struct {
	Node     string `json:"node"`
	Campaign string `json:"campaign"`
	Max      int    `json:"max,omitempty"`
}

// WireLease is one leased shard: the index plus the unit range and content
// key, so a node can validate its local plan against the coordinator's.
type WireLease struct {
	Shard int    `json:"shard"`
	Lo    int    `json:"lo"`
	Hi    int    `json:"hi"`
	Key   string `json:"key"`
}

// LeaseResponse carries the granted leases and the TTL the node must
// heartbeat within.  Done means the campaign has no work left at all;
// empty Leases with Done=false means everything pending is currently
// leased elsewhere — poll again.
type LeaseResponse struct {
	Leases []WireLease `json:"leases"`
	TTLMS  int64       `json:"ttl_ms"`
	Done   bool        `json:"done"`
}

// HeartbeatRequest renews Node's leases on Shards of Campaign.
type HeartbeatRequest struct {
	Node     string `json:"node"`
	Campaign string `json:"campaign"`
	Shards   []int  `json:"shards"`
}

// HeartbeatResponse splits the heartbeat into renewed and lost leases; the
// node must abandon lost shards (another node owns them now).
type HeartbeatResponse struct {
	Renewed []int `json:"renewed"`
	Lost    []int `json:"lost"`
}

// CompleteRequest reports one journaled shard.  The node must have fsync'd
// the outcome into its side journal before sending this.
type CompleteRequest struct {
	Node     string `json:"node"`
	Campaign string `json:"campaign"`
	Shard    int    `json:"shard"`
}

// CompleteResponse acknowledges a completion.  Already means some node
// reported the shard first; Done means this completion finished the
// campaign.
type CompleteResponse struct {
	Already bool `json:"already"`
	Done    bool `json:"done"`
}

// Progress is the fabric-wide progress view of one campaign: shard and
// unit totals, per-node lease/steal ledgers, and the coordinator's ETA.
type Progress struct {
	Fingerprint    string         `json:"fingerprint"`
	Kind           string         `json:"kind"`
	State          string         `json:"state"`
	ShardsTotal    int            `json:"shards_total"`
	ShardsComplete int            `json:"shards_complete"`
	ShardsLeased   int            `json:"shards_leased"`
	ShardsPending  int            `json:"shards_pending"`
	UnitsTotal     int            `json:"units_total"`
	UnitsDone      int            `json:"units_done"`
	ElapsedMS      int64          `json:"elapsed_ms"`
	EtaMS          int64          `json:"eta_ms,omitempty"`
	Nodes          []NodeProgress `json:"nodes"`
}

// NodeProgress is one node's ledger within a campaign.
type NodeProgress struct {
	Node      string `json:"node"`
	Leased    int    `json:"leased"`
	Completed int    `json:"completed"`
	Stolen    int    `json:"stolen"`
	IdleMS    int64  `json:"idle_ms"`
}

// wireError is the JSON error envelope.
type wireError struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// errorCode maps a sentinel to its wire code; codeError maps it back.
var wireCodes = []struct {
	err    error
	code   string
	status int
}{
	{ErrUnknownCampaign, "unknown_campaign", http.StatusNotFound},
	{ErrUnknownShard, "unknown_shard", http.StatusBadRequest},
	{ErrNotDone, "not_done", http.StatusConflict},
	{ErrSpecMismatch, "spec_mismatch", http.StatusConflict},
	{ErrBadRequest, "bad_request", http.StatusBadRequest},
}

func statusFor(err error) (status int, code string) {
	for _, w := range wireCodes {
		if errors.Is(err, w.err) {
			return w.status, w.code
		}
	}
	return http.StatusInternalServerError, ""
}

func codeError(code string) error {
	for _, w := range wireCodes {
		if w.code == code {
			return w.err
		}
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	status, code := statusFor(err)
	writeJSON(w, status, wireError{Error: err.Error(), Code: code})
}

// decodeWireError reconstructs a typed error from a non-2xx response body.
func decodeWireError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var we wireError
	if json.Unmarshal(body, &we) == nil && we.Error != "" {
		if base := codeError(we.Code); base != nil {
			return fmt.Errorf("%w: %s", base, we.Error)
		}
		return fmt.Errorf("fabric: %s: %s", resp.Status, we.Error)
	}
	return fmt.Errorf("fabric: %s: %s", resp.Status, string(body))
}
