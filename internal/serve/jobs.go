package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"steac/internal/campaign"
	"steac/internal/fabric"
	"steac/internal/obs"
)

// The async job API: fault campaigns are minutes-to-hours of work, far
// past any sane HTTP deadline, so they run as jobs instead of requests.
//
//	POST   /v1/jobs       submit a campaign spec  -> 202 + job status
//	GET    /v1/jobs/{id}  poll progress/result    -> 200
//	DELETE /v1/jobs/{id}  cancel (graceful drain) -> 202
//
// Jobs are content-addressed and tenant-scoped: the id derives from the
// campaign fingerprint (for anonymous daemons it is a fingerprint prefix;
// with a tenant set it is additionally keyed by the owning tenant, so two
// tenants submitting the same spec get distinct jobs and checkpoints).
// Submitting the same spec twice under the same identity converges on the
// same job.  Every state transition is appended to the fsync'd job
// database under the checkpoint root, so a restarted daemon still knows
// every job's owner, spec, progress, and terminal result — recovery is a
// client no-op: poll the same id, or re-POST the spec to resume from the
// journal.

var (
	obsJobsSubmitted = obs.GetCounter("serve.jobs_submitted")
	obsJobsDone      = obs.GetCounter("serve.jobs_completed")
	obsJobsFailed    = obs.GetCounter("serve.jobs_failed")
	obsJobsCanceled  = obs.GetCounter("serve.jobs_canceled")
	obsJobsActive    = obs.GetGauge("serve.jobs_active")
)

// JobRequest is the POST /v1/jobs body.  Kind and Spec are the semantic
// payload (they form the job id); Workers and ShardSize are execution
// tuning and change nothing about the result.
type JobRequest struct {
	Kind string          `json:"kind"`
	Spec json.RawMessage `json:"spec"`
	// Workers is the campaign pool size (0 = server default).
	Workers int `json:"workers,omitempty"`
	// ShardSize is the checkpoint shard granularity (0 = campaign
	// default; an existing checkpoint's manifest wins regardless).
	ShardSize int `json:"shard_size,omitempty"`
	// Fabric routes the campaign to the fabric coordinator (leased out to
	// joined nodes) instead of the local pool.  Requires the daemon to
	// run as a coordinator; otherwise the submission is a 400.
	Fabric bool `json:"fabric,omitempty"`
}

// JobStatus is the wire form of one job, returned by every job endpoint.
type JobStatus struct {
	ID string `json:"id"`
	// Tenant is the owning tenant's id.  Jobs are only visible to their
	// owner, so this is informational ("anon" on daemons without a tenant
	// set).
	Tenant      string `json:"tenant,omitempty"`
	Kind        string `json:"kind"`
	Fingerprint string `json:"fingerprint"`
	// State is queued | running | done | failed | canceled, or
	// checkpointed for a job known only from the durable database or the
	// checkpoint directory (no live job in this process, e.g. after a
	// daemon restart).
	State       string `json:"state"`
	ShardsDone  int    `json:"shards_done"`
	ShardsTotal int    `json:"shards_total,omitempty"`
	UnitsDone   int    `json:"units_done,omitempty"`
	UnitsTotal  int    `json:"units_total,omitempty"`
	// Resumed and Repaired are checkpoint accounting: shards replayed
	// from the journal and damaged entries dropped on load.
	Resumed  int `json:"resumed,omitempty"`
	Repaired int `json:"repaired,omitempty"`
	// ElapsedMS covers queued+running time so far (or to completion);
	// EtaMS extrapolates the remaining units from the rate observed so
	// far (absent until the first shard completes).
	ElapsedMS int64 `json:"elapsed_ms,omitempty"`
	EtaMS     int64 `json:"eta_ms,omitempty"`
	// Counters is the campaign.* obs counter snapshot at status time
	// (fabric.* for fabric jobs).
	Counters []obs.MetricValue `json:"counters,omitempty"`
	// Fabric is the fabric-wide progress view for distributed jobs:
	// leased/complete/stolen shard ledgers per node.  Local-pool jobs
	// omit it.
	Fabric *fabric.Progress `json:"fabric,omitempty"`
	// Result is the engine report once State is done.
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// Job states.
const (
	jobQueued       = "queued"
	jobRunning      = "running"
	jobDone         = "done"
	jobFailed       = "failed"
	jobCanceled     = "canceled"
	jobCheckpointed = "checkpointed"
)

// campaignJob is one live job in this process.
type campaignJob struct {
	id          string
	tenant      string
	kind        string
	fingerprint string
	spec        campaign.Spec
	rawSpec     json.RawMessage
	dir         string
	cancel      context.CancelCauseFunc

	mu          sync.Mutex
	state       string
	shardsDone  int
	shardsTotal int
	unitsDone   int
	unitsTotal  int
	resumed     int
	repaired    int
	started     time.Time // submission
	firstShard  time.Time // first shard completed in this process
	finished    time.Time
	result      json.RawMessage
	errMsg      string
	fabricProg  *fabric.Progress // latest coordinator snapshot; nil for local jobs
}

// status snapshots the job as a JobStatus.
func (j *campaignJob) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.id, Tenant: j.tenant, Kind: j.kind, Fingerprint: j.fingerprint, State: j.state,
		ShardsDone: j.shardsDone, ShardsTotal: j.shardsTotal,
		UnitsDone: j.unitsDone, UnitsTotal: j.unitsTotal,
		Resumed: j.resumed, Repaired: j.repaired,
		Result: j.result, Error: j.errMsg,
	}
	end := j.finished
	if end.IsZero() {
		end = time.Now()
	}
	st.ElapsedMS = end.Sub(j.started).Milliseconds()
	if j.fabricProg != nil {
		// Fabric jobs report the coordinator's fabric-wide view: shard
		// and unit totals across every node, per-node lease/steal
		// ledgers, and the coordinator's own rate-based ETA — the local
		// single-pool extrapolation below would undercount a cluster.
		prog := *j.fabricProg
		st.Fabric = &prog
		st.EtaMS = prog.EtaMS
		st.Counters = obs.CountersPrefix("fabric.")
		return st
	}
	if j.state == jobRunning && !j.firstShard.IsZero() && j.unitsDone > 0 && j.unitsDone < j.unitsTotal {
		rate := float64(j.unitsDone) / float64(time.Since(j.firstShard))
		if rate > 0 {
			st.EtaMS = int64(float64(j.unitsTotal-j.unitsDone) / rate / float64(time.Millisecond))
		}
	}
	st.Counters = obs.CountersPrefix("campaign.")
	return st
}

// record snapshots the job as a durable database row.  Callers must not
// hold j.mu.
func (j *campaignJob) record() jobRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.recordLocked()
}

func (j *campaignJob) recordLocked() jobRecord {
	rec := jobRecord{
		ID: j.id, Tenant: j.tenant, Kind: j.kind, Fingerprint: j.fingerprint,
		Spec: j.rawSpec, State: j.state,
		ShardsDone: j.shardsDone, ShardsTotal: j.shardsTotal,
		UnitsDone: j.unitsDone, UnitsTotal: j.unitsTotal,
		Submitted: j.started.UnixMilli(),
		Result:    j.result, Error: j.errMsg,
	}
	if !j.finished.IsZero() {
		rec.Finished = j.finished.UnixMilli()
	}
	return rec
}

// jobManager owns the live jobs of one Server plus the durable database.
type jobManager struct {
	dir     string
	workers int
	sem     chan struct{}
	wg      sync.WaitGroup
	fabric  *fabric.Coordinator // non-nil when this daemon coordinates a fabric
	db      *jobDB              // nil when no JobDir is configured
	dbErr   error               // deferred openJobDB failure, surfaced on submit
	// ingest, when non-nil, receives every job row that reaches the done
	// state — the results-catalog hook (Server.ingestJobRecord).
	ingest func(jobRecord)

	mu   sync.Mutex
	jobs map[string]*campaignJob
}

func newJobManager(dir string, maxJobs, workers int) *jobManager {
	if maxJobs <= 0 {
		maxJobs = 2
	}
	jm := &jobManager{
		dir:     dir,
		workers: workers,
		sem:     make(chan struct{}, maxJobs),
		jobs:    map[string]*campaignJob{},
	}
	if dir != "" {
		jm.db, jm.dbErr = openJobDB(dir)
	}
	return jm
}

// jobID derives the job identifier from the owning tenant and the campaign
// fingerprint.  Anonymous daemons keep the historical fingerprint-prefix
// ids (so pre-tenancy checkpoints and clients keep working); named tenants
// get ids additionally keyed by identity, which also namespaces their
// checkpoint directories — two tenants running the same spec never share
// state or visibility.
func jobID(tenant, fingerprint string) string {
	if tenant == "" || tenant == AnonTenant {
		return fingerprint[:16]
	}
	sum := sha256.Sum256([]byte(tenant + "\x00" + fingerprint))
	return hex.EncodeToString(sum[:])[:16]
}

// validJobID reports whether id has the exact shape jobID produces — 16
// lowercase-hex characters.  Anything else cannot name a job and must
// never be joined into a checkpoint path (a client-supplied id reaches
// the filesystem in handleJobGet's disk fallback).
func validJobID(id string) bool {
	if len(id) != 16 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// quotaLocked enforces the tenant's concurrent-job allowance: the count of
// its live queued/running jobs must stay under MaxJobs.  Caller holds
// jm.mu.
func (jm *jobManager) quotaLocked(tn *tenantState) error {
	if tn.Tenant.MaxJobs <= 0 {
		return nil
	}
	live := 0
	for _, j := range jm.jobs {
		if j.tenant != tn.ID {
			continue
		}
		j.mu.Lock()
		state := j.state
		j.mu.Unlock()
		if state == jobQueued || state == jobRunning {
			live++
		}
	}
	if live >= tn.Tenant.MaxJobs {
		return fmt.Errorf("%w: tenant %q already has %d of %d jobs live",
			ErrQuotaExceeded, tn.ID, live, tn.Tenant.MaxJobs)
	}
	return nil
}

// submit starts (or joins) the job for a spec.  Resubmitting a spec while
// its job is queued, running, or done returns the existing job untouched;
// resubmitting after a failure or cancellation starts a fresh attempt,
// which — with a checkpoint directory — resumes from the journal.
func (jm *jobManager) submit(tn *tenantState, spec campaign.Spec, req JobRequest) (*campaignJob, error) {
	if jm.dbErr != nil {
		return nil, fmt.Errorf("serve: job database unavailable: %w", jm.dbErr)
	}
	fingerprint, err := campaign.Fingerprint(spec)
	if err != nil {
		return nil, err
	}
	id := jobID(tn.ID, fingerprint)

	jm.mu.Lock()
	defer jm.mu.Unlock()
	if j, ok := jm.jobs[id]; ok {
		j.mu.Lock()
		state := j.state
		j.mu.Unlock()
		if state != jobFailed && state != jobCanceled {
			return j, nil
		}
	}
	if err := jm.quotaLocked(tn); err != nil {
		return nil, err
	}

	j := &campaignJob{
		id: id, tenant: tn.ID, kind: spec.Kind(), fingerprint: fingerprint,
		spec: spec, rawSpec: req.Spec,
		state: jobQueued, started: time.Now(),
	}
	if jm.dir != "" {
		j.dir = filepath.Join(jm.dir, id)
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	j.cancel = cancel
	jm.jobs[id] = j
	if err := jm.db.put(j.record()); err != nil {
		delete(jm.jobs, id)
		cancel(err)
		return nil, err
	}

	obsJobsSubmitted.Add(1)
	jm.wg.Add(1)
	go jm.run(ctx, j, req.Workers, req.ShardSize)
	return j, nil
}

// submitFabric starts (or joins) a distributed job: the campaign is
// registered with the fabric coordinator and executed by whatever nodes
// lease its shards; the local job merely tracks coordinator progress, so
// it does not consume a MaxJobs slot (though it still counts against the
// tenant's own quota).  Campaign identity on the fabric is the spec
// fingerprint; the HTTP-visible job id is tenant-scoped like local jobs.
func (jm *jobManager) submitFabric(ctx context.Context, tn *tenantState, spec campaign.Spec, req JobRequest) (*campaignJob, error) {
	if jm.dbErr != nil {
		return nil, fmt.Errorf("serve: job database unavailable: %w", jm.dbErr)
	}
	payload, err := spec.Marshal()
	if err != nil {
		return nil, err
	}
	info, err := jm.fabric.Submit(ctx, fabric.SubmitRequest{
		Kind: spec.Kind(), Spec: payload, ShardSize: req.ShardSize, Tenant: tn.ID,
	})
	if err != nil {
		return nil, err
	}
	id := jobID(tn.ID, info.Fingerprint)

	jm.mu.Lock()
	defer jm.mu.Unlock()
	if j, ok := jm.jobs[id]; ok {
		j.mu.Lock()
		state := j.state
		j.mu.Unlock()
		if state != jobFailed && state != jobCanceled {
			return j, nil
		}
	}
	if err := jm.quotaLocked(tn); err != nil {
		return nil, err
	}
	j := &campaignJob{
		id: id, tenant: tn.ID, kind: spec.Kind(), fingerprint: info.Fingerprint,
		spec: spec, rawSpec: req.Spec,
		state: jobRunning, started: time.Now(),
		fabricProg: &fabric.Progress{Fingerprint: info.Fingerprint, Kind: info.Kind, State: "running"},
	}
	watchCtx, cancel := context.WithCancelCause(context.Background())
	j.cancel = cancel
	jm.jobs[id] = j
	if err := jm.db.put(j.record()); err != nil {
		delete(jm.jobs, id)
		cancel(err)
		return nil, err
	}
	obsJobsSubmitted.Add(1)
	jm.wg.Add(1)
	go jm.watchFabric(watchCtx, j)
	return j, nil
}

// watchFabric tracks one distributed job: poll the coordinator until the
// campaign merges, then record its report.  Canceling the job stops the
// watch only — the fabric campaign itself belongs to the coordinator and
// keeps running on its nodes.
func (jm *jobManager) watchFabric(ctx context.Context, j *campaignJob) {
	defer jm.wg.Done()
	obsJobsActive.Set(obsJobsActive.Value() + 1)
	defer func() { obsJobsActive.Set(obsJobsActive.Value() - 1) }()
	ticker := time.NewTicker(100 * time.Millisecond)
	defer ticker.Stop()
	for {
		prog, err := jm.fabric.Progress(j.fingerprint)
		if err != nil {
			jm.finish(j, nil, err)
			return
		}
		j.mu.Lock()
		j.fabricProg = &prog
		j.shardsDone = prog.ShardsComplete
		j.shardsTotal = prog.ShardsTotal
		j.unitsDone = prog.UnitsDone
		j.unitsTotal = prog.UnitsTotal
		j.mu.Unlock()
		if prog.State == "done" {
			raw, err := jm.fabric.Report(j.fingerprint)
			if err != nil {
				jm.finish(j, nil, err)
				return
			}
			j.mu.Lock()
			j.finished = time.Now()
			j.state = jobDone
			j.result = raw
			rec := j.recordLocked()
			j.mu.Unlock()
			_ = jm.db.put(rec)
			if jm.ingest != nil {
				jm.ingest(rec)
			}
			obsJobsDone.Add(1)
			return
		}
		select {
		case <-ctx.Done():
			jm.finish(j, nil, fmt.Errorf("fabric watch stopped (%v): %w", context.Cause(ctx), ctx.Err()))
			return
		case <-ticker.C:
		}
	}
}

// run executes one job: wait for a slot, run the checkpointed campaign,
// record the outcome.  Cancellation while queued or running flows through
// ctx; the campaign layer drains in-flight shards to the journal before
// returning.
func (jm *jobManager) run(ctx context.Context, j *campaignJob, workers, shardSize int) {
	defer jm.wg.Done()
	select {
	case jm.sem <- struct{}{}:
		defer func() { <-jm.sem }()
	case <-ctx.Done():
		jm.finish(j, nil, fmt.Errorf("job canceled while queued (%v): %w", context.Cause(ctx), ctx.Err()))
		return
	}

	j.mu.Lock()
	j.state = jobRunning
	rec := j.recordLocked()
	j.mu.Unlock()
	_ = jm.db.put(rec)
	obsJobsActive.Set(obsJobsActive.Value() + 1)
	defer func() { obsJobsActive.Set(obsJobsActive.Value() - 1) }()

	if workers <= 0 {
		workers = jm.workers
	}
	res, err := campaign.Run(ctx, j.spec, campaign.Options{
		Workers:   workers,
		ShardSize: shardSize,
		Dir:       j.dir,
		OnShard: func(ev campaign.ShardEvent) {
			j.mu.Lock()
			j.shardsDone = ev.Done
			j.shardsTotal = ev.Total
			j.unitsTotal = ev.UnitsTotal
			if ev.Resumed {
				j.resumed++
			} else {
				j.unitsDone = ev.UnitsDone
				if j.firstShard.IsZero() {
					j.firstShard = time.Now()
				}
			}
			j.mu.Unlock()
		},
	})
	jm.finish(j, res, err)
}

// finish records a job's terminal state, in memory and in the database.
func (jm *jobManager) finish(j *campaignJob, res *campaign.Result, err error) {
	j.mu.Lock()
	j.finished = time.Now()
	switch {
	case err == nil:
		blob, merr := json.Marshal(res.Report)
		if merr != nil {
			j.state = jobFailed
			j.errMsg = merr.Error()
			obsJobsFailed.Add(1)
			break
		}
		j.state = jobDone
		j.result = blob
		j.resumed = res.Resumed
		j.repaired = res.Repaired
		j.shardsDone = res.Shards
		j.shardsTotal = res.Shards
		j.unitsDone = j.unitsTotal
		obsJobsDone.Add(1)
	case errors.Is(err, context.Canceled):
		j.state = jobCanceled
		j.errMsg = err.Error()
		obsJobsCanceled.Add(1)
	default:
		j.state = jobFailed
		j.errMsg = err.Error()
		obsJobsFailed.Add(1)
	}
	rec := j.recordLocked()
	j.mu.Unlock()
	_ = jm.db.put(rec)
	if rec.State == jobDone && jm.ingest != nil {
		jm.ingest(rec)
	}
}

// get returns the live job, or nil.
func (jm *jobManager) get(id string) *campaignJob {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	return jm.jobs[id]
}

// drain cancels every live job (the campaign layer journals in-flight
// shards before unwinding — graceful-drain checkpointing) and waits for
// them to settle or ctx to expire.
func (jm *jobManager) drain(ctx context.Context) error {
	jm.mu.Lock()
	for _, j := range jm.jobs {
		j.cancel(errors.New("server draining"))
	}
	jm.mu.Unlock()
	settled := make(chan struct{})
	go func() {
		jm.wg.Wait()
		close(settled)
	}()
	select {
	case <-settled:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain jobs: %w", ctx.Err())
	}
}

// handleJobSubmit is POST /v1/jobs.  Job submissions run the same
// admission pipeline as synchronous requests: authenticate, spend a
// rate-limit token, then check the tenant's concurrent-job quota.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	obsRequests.Add(1)
	tn, err := s.cfg.Tenants.authenticate(r)
	if err != nil {
		obsAuthFails.Add(1)
		writeError(w, err)
		return
	}
	tn.reqs.Add(1)
	if s.draining.Load() {
		writeError(w, ErrDraining)
		return
	}
	if !tn.allow() {
		obsQuotaRejs.Add(1)
		tn.rejects.Add(1)
		writeError(w, fmt.Errorf("%w: tenant %q rate limit (%g/s, burst %d)",
			ErrQuotaExceeded, tn.ID, tn.RatePerSec, tn.Burst))
		return
	}
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, badRequestf("serve: bad job request: %v", err))
		return
	}
	if req.Kind == "" || len(req.Spec) == 0 {
		writeError(w, badRequestf("serve: job needs kind and spec"))
		return
	}
	spec, err := campaign.Decode(req.Kind, req.Spec)
	if err != nil {
		writeError(w, errBadRequest{err})
		return
	}
	var j *campaignJob
	if req.Fabric {
		if s.jobMgr.fabric == nil {
			writeError(w, badRequestf("serve: fabric job submitted but this daemon is not a coordinator"))
			return
		}
		j, err = s.jobMgr.submitFabric(r.Context(), tn, spec, req)
	} else {
		j, err = s.jobMgr.submit(tn, spec, req)
	}
	if err != nil {
		if errors.Is(err, ErrQuotaExceeded) {
			obsQuotaRejs.Add(1)
			tn.rejects.Add(1)
			writeError(w, err)
			return
		}
		writeError(w, errBadRequest{err})
		return
	}
	writeJSON(w, http.StatusAccepted, j.status())
}

// statusFromRecord renders a durable database row for a job with no live
// instance in this process: terminal rows keep their recorded state and
// result; interrupted rows report "checkpointed", overlaid with whatever
// progress the on-disk campaign journal holds.
func (s *Server) statusFromRecord(rec jobRecord) JobStatus {
	st := JobStatus{
		ID: rec.ID, Tenant: rec.Tenant, Kind: rec.Kind, Fingerprint: rec.Fingerprint,
		State:      rec.State,
		ShardsDone: rec.ShardsDone, ShardsTotal: rec.ShardsTotal,
		UnitsDone: rec.UnitsDone, UnitsTotal: rec.UnitsTotal,
		Result: rec.Result, Error: rec.Error,
	}
	if rec.Finished > 0 {
		st.ElapsedMS = rec.Finished - rec.Submitted
	}
	switch rec.State {
	case jobDone, jobFailed:
		return st
	}
	// Canceled or interrupted mid-flight: if the checkpoint survives, the
	// job is resumable — report "checkpointed" with the journal's progress
	// rather than a stale queued/running/canceled claim.  A canceled job
	// whose checkpoint is gone stays canceled.
	if s.jobMgr.dir != "" {
		if info, err := campaign.Inspect(filepath.Join(s.jobMgr.dir, rec.ID)); err == nil {
			st.State = jobCheckpointed
			st.ShardsDone, st.ShardsTotal = info.ShardsDone, info.Shards
			st.UnitsTotal, st.Repaired = info.Units, info.Repaired
			return st
		}
	}
	if rec.State != jobCanceled {
		st.State = jobCheckpointed
	}
	return st
}

// handleJobGet is GET /v1/jobs/{id}.  Visibility is scoped to the owning
// tenant: another tenant's job id — even a guessed one — answers the same
// 404 as a job that never existed.  A job with no live instance is served
// from the durable database (pre-restart submissions keep their terminal
// results; interrupted ones report "checkpointed"), falling back to a bare
// checkpoint-directory inspection for databases predating the job DB.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	obsRequests.Add(1)
	tn, err := s.cfg.Tenants.authenticate(r)
	if err != nil {
		obsAuthFails.Add(1)
		writeError(w, err)
		return
	}
	tn.reqs.Add(1)
	id := r.PathValue("id")
	notFound := func() { writeError(w, fmt.Errorf("%w: no job %q", ErrNotFound, id)) }
	if j := s.jobMgr.get(id); j != nil {
		if j.tenant != tn.ID {
			notFound()
			return
		}
		writeJSON(w, http.StatusOK, j.status())
		return
	}
	if rec, ok := s.jobMgr.db.get(id); ok {
		if rec.Tenant != tn.ID {
			notFound()
			return
		}
		writeJSON(w, http.StatusOK, s.statusFromRecord(rec))
		return
	}
	if s.jobMgr.dir != "" && validJobID(id) {
		dir := filepath.Join(s.jobMgr.dir, id)
		if info, err := campaign.Inspect(dir); err == nil {
			writeJSON(w, http.StatusOK, JobStatus{
				ID: id, Tenant: tn.ID, Kind: info.Kind, Fingerprint: info.Fingerprint,
				State:      jobCheckpointed,
				ShardsDone: info.ShardsDone, ShardsTotal: info.Shards,
				UnitsTotal: info.Units, Repaired: info.Repaired,
			})
			return
		} else if !errors.Is(err, os.ErrNotExist) {
			writeError(w, err)
			return
		}
	}
	notFound()
}

// handleJobCancel is DELETE /v1/jobs/{id}: cancel the job's context and
// return its (soon to be canceled) status.  The campaign layer finishes
// and journals in-flight shards, so a canceled job's checkpoint is exactly
// resumable.  Ownership-scoped like GET.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	obsRequests.Add(1)
	tn, err := s.cfg.Tenants.authenticate(r)
	if err != nil {
		obsAuthFails.Add(1)
		writeError(w, err)
		return
	}
	tn.reqs.Add(1)
	id := r.PathValue("id")
	j := s.jobMgr.get(id)
	if j == nil || j.tenant != tn.ID {
		writeError(w, fmt.Errorf("%w: no job %q", ErrNotFound, id))
		return
	}
	j.cancel(errors.New("canceled by client"))
	writeJSON(w, http.StatusAccepted, j.status())
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
