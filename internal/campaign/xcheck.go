package campaign

import (
	"context"
	"encoding/json"
	"fmt"

	"steac/internal/dsc"
	"steac/internal/march"
	"steac/internal/memory"
	"steac/internal/scenario"
	"steac/internal/testinfo"
	"steac/internal/xcheck"
)

// KindXCheck tags gate-level stuck-at campaign specs in manifests and job
// requests.
const KindXCheck = "xcheck"

// Campaign selector values for XCheckSpec.Campaign.
const (
	XCheckTPG        = "tpg"
	XCheckController = "controller"
	XCheckWrapper    = "wrapper"
)

func init() {
	RegisterKind(KindXCheck, func(payload json.RawMessage) (Spec, error) {
		var s XCheckSpec
		if err := json.Unmarshal(payload, &s); err != nil {
			return nil, err
		}
		return &s, nil
	})
}

// XCheckSpec describes one gate-level stuck-at fault campaign against a
// generated design.  As with CoverageSpec, every field is semantic and
// fingerprinted; tuning lives in Options.
type XCheckSpec struct {
	// Campaign selects the design under test: "tpg" (sequencer + TPG
	// bench), "controller" (shared BIST controller), or "wrapper"
	// (P1500-style wrapper stack).
	Campaign string `json:"campaign"`
	// Name labels the campaign in the result (defaults to Campaign).
	Name string `json:"name,omitempty"`
	// Algorithm and Memories configure the "tpg" bench.
	Algorithm string          `json:"algorithm,omitempty"`
	Memories  []memory.Config `json:"memories,omitempty"`
	// Scenario/ChipSeed regenerate a scenario chip as the design source:
	// MemoryNames then selects "tpg" macros from it and Core resolves
	// against its cores instead of the DSC inventory.
	Scenario    string   `json:"scenario,omitempty"`
	ChipSeed    int64    `json:"chip_seed,omitempty"`
	MemoryNames []string `json:"memory_names,omitempty"`
	// NGroups configures the "controller" campaign.
	NGroups int `json:"n_groups,omitempty"`
	// Core ("USB", "TV", "JPEG", or a scenario core name) and TamWidth
	// configure the "wrapper" campaign.
	Core     string `json:"core,omitempty"`
	TamWidth int    `json:"tam_width,omitempty"`
	// MaxFaults/Seed sample the fault universe; MaxUndetected caps the
	// survivor list; MaxPatterns caps wrapper scan patterns per fault.
	// All four change the result, hence live in the spec.
	MaxFaults     int   `json:"max_faults,omitempty"`
	Seed          int64 `json:"seed,omitempty"`
	MaxUndetected int   `json:"max_undetected,omitempty"`
	MaxPatterns   int   `json:"max_patterns,omitempty"`
}

// Kind implements Spec.
func (s *XCheckSpec) Kind() string { return KindXCheck }

// Marshal implements Spec.
func (s *XCheckSpec) Marshal() (json.RawMessage, error) {
	return json.Marshal(s)
}

func (s *XCheckSpec) options() xcheck.Options {
	return xcheck.Options{
		MaxFaults:     s.MaxFaults,
		Seed:          s.Seed,
		MaxUndetected: s.MaxUndetected,
		MaxPatterns:   s.MaxPatterns,
	}
}

func (s *XCheckSpec) name() string {
	if s.Name != "" {
		return s.Name
	}
	return s.Campaign
}

// coreByName resolves a wrapper campaign's core from the DSC inventory.
func coreByName(name string) (*testinfo.Core, error) {
	for _, c := range dsc.Cores() {
		if c.Name == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("campaign: unknown core %q", name)
}

// Prepare implements Spec: build and compile the design, record the
// fault-free golden trace, sample the fault universe.
func (s *XCheckSpec) Prepare(context.Context) (Executor, error) {
	opts := s.options()
	var chip *scenario.Chip
	if s.Scenario != "" {
		var err error
		if chip, err = scenario.GenerateByName(s.Scenario, s.ChipSeed); err != nil {
			return nil, err
		}
	}
	var (
		sim *xcheck.CampaignSim
		err error
	)
	switch s.Campaign {
	case XCheckTPG:
		mems, algName := s.Memories, s.Algorithm
		if chip != nil && len(s.MemoryNames) > 0 {
			if len(mems) > 0 {
				return nil, fmt.Errorf("campaign: both memories and memory_names set")
			}
			for _, name := range s.MemoryNames {
				m, merr := chipMemory(chip, name)
				if merr != nil {
					return nil, merr
				}
				mems = append(mems, m)
			}
		}
		if algName == "" && chip != nil {
			algName = chipAlgorithm(chip)
		}
		alg, ok := march.ByName(algName)
		if !ok {
			return nil, fmt.Errorf("campaign: unknown march algorithm %q", algName)
		}
		if len(mems) == 0 {
			return nil, fmt.Errorf("campaign: tpg campaign needs at least one memory")
		}
		sim, err = xcheck.NewTPGCampaignSim(s.name(), alg, mems, opts)
	case XCheckController:
		if s.NGroups <= 0 {
			return nil, fmt.Errorf("campaign: controller campaign needs n_groups > 0")
		}
		sim, err = xcheck.NewControllerCampaignSim(s.name(), s.NGroups, opts)
	case XCheckWrapper:
		var core *testinfo.Core
		var cerr error
		if chip != nil {
			core, cerr = chipCore(chip, s.Core)
		} else {
			core, cerr = coreByName(s.Core)
		}
		if cerr != nil {
			return nil, cerr
		}
		if s.TamWidth <= 0 {
			return nil, fmt.Errorf("campaign: wrapper campaign needs tam_width > 0")
		}
		sim, err = xcheck.NewWrapperCampaignSim(s.name(), core, s.TamWidth, opts)
	default:
		return nil, fmt.Errorf("campaign: unknown xcheck campaign %q (want %s|%s|%s)",
			s.Campaign, XCheckTPG, XCheckController, XCheckWrapper)
	}
	if err != nil {
		return nil, err
	}
	return &xcheckExecutor{spec: s, sim: sim}, nil
}

type xcheckExecutor struct {
	spec *XCheckSpec
	sim  *xcheck.CampaignSim
}

func (e *xcheckExecutor) Units() int { return e.sim.Faults() }

// BatchSize aligns shard sizes to the packed netlist simulator's fault
// batch (63 injected lanes + the golden machine per word).
func (e *xcheckExecutor) BatchSize() int { return xcheck.PackedBatch }

// NewWorker returns a stateless view: CampaignSim.DetectBatch builds its
// own packed (or cloned scalar) machines per call, so workers share the
// sim directly.
func (e *xcheckExecutor) NewWorker() (Worker, error) {
	return &xcheckWorker{sim: e.sim}, nil
}

// Assemble maps the outcome vector (first divergent cycle, -1 = silent)
// through CampaignSim.Assemble — the same path runCampaign uses.
func (e *xcheckExecutor) Assemble(out []int64) (interface{}, error) {
	detectedAt := make([]int, len(out))
	for i, v := range out {
		detectedAt[i] = int(v)
	}
	return e.sim.Assemble(detectedAt, e.spec.options()), nil
}

type xcheckWorker struct {
	sim *xcheck.CampaignSim
}

func (w *xcheckWorker) Run(ctx context.Context, lo, hi int, out []int64) error {
	// DetectBatch packs up to 63 faults per word-parallel netlist pass and
	// polls ctx between batches (the packed runners additionally poll
	// mid-session); on cancellation its results are garbage and the ctx
	// check below discards the shard.
	for i, at := range w.sim.DetectBatch(ctx, lo, hi-lo) {
		out[i] = int64(at)
	}
	return ctx.Err()
}
