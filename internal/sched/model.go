// Package sched implements the STEAC Core Test Scheduler (paper §2): it
// partitions core tests into test sessions, assigns TAM wires to each core
// under the chip's test-IO and power constraints, chains scan and
// functional tests of the same core, and co-schedules the BRAINS BIST
// sessions (Fig. 4).  It also provides the two baselines the paper compares
// against: a non-session-based greedy scheduler (control IOs dedicated for
// the whole test, as parallel testing without session barriers requires)
// and a fully serial schedule.
//
// The paper's central claim — that under a realistic test-IO limit the
// session-based approach beats non-session-based scheduling (4,371,194 vs
// 4,713,935 cycles on the DSC chip) — is reproduced by cmd/dscflow and the
// benchmarks in the repository root.
package sched

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"steac/internal/testinfo"
	"steac/internal/wrapper"
)

// Kind classifies schedulable tests.
type Kind int

// Test kinds.
const (
	ScanKind Kind = iota
	FuncKind
	BISTKind
	// ExtestKind is the chip-level interconnect test session appended by
	// the flow when an interconnect list is supplied (see pattern.BuildExtest).
	ExtestKind
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case ScanKind:
		return "scan"
	case FuncKind:
		return "func"
	case BISTKind:
		return "bist"
	case ExtestKind:
		return "extest"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Test is one schedulable unit.
type Test struct {
	ID   string
	Kind Kind
	// Core is set for scan and functional tests.
	Core *testinfo.Core
	// Patterns is the pattern count (scan or functional).
	Patterns int
	// NeedFuncPins is the functional-pin demand (PI+PO) of a functional
	// test; patterns take ceil(Need/granted) tester cycles each.
	NeedFuncPins int
	// FixedCycles is the duration of a BIST group (March length + the
	// controller's group-advance cycle).
	FixedCycles int
	// Power is the test's power estimate in the same arbitrary units used
	// by brains.Power.
	Power float64
}

// BISTGroup describes one BRAINS sequencer group for co-scheduling.
type BISTGroup struct {
	Name   string
	Cycles int
	Power  float64
}

// Resources is the chip-level constraint set.
type Resources struct {
	// TestPins is the budget for dedicated test IOs: TAM data pins (two
	// per TAM wire) plus test control pins.
	TestPins int
	// FuncPins is the number of chip pads that can be multiplexed to core
	// functional IOs during test.
	FuncPins int
	// MaxPower caps the summed power of concurrent tests (0 = unbounded).
	MaxPower float64
	// PowerBudget caps the *summed* power of every test placed in one
	// session — scan, functional and BIST groups alike (0 = unbounded).
	// Where MaxPower bounds instantaneous concurrent switching, the budget
	// bounds a session's total committed test energy proxy, the
	// per-session envelope that power-constrained hybrid-BIST scheduling
	// (Sadredini et al. 2017) plans against.  It applies to session-based
	// scheduling only: sessions are the budget's accounting unit, so the
	// non-session and serial baselines ignore it.
	PowerBudget float64
	// Partitioner picks the wrapper-chain heuristic for hard cores.
	Partitioner wrapper.Partitioner
	// Workers is the goroutine count of the session-partition search
	// (0 = runtime.GOMAXPROCS(0)).  The schedule found is identical for
	// every worker count; Workers only trades wall-clock for CPU.
	Workers int
}

// BuildTests derives the schedulable tests from the cores' test information
// and the BIST plan.
func BuildTests(cores []*testinfo.Core, bist []BISTGroup) ([]Test, error) {
	var tests []Test
	for _, c := range cores {
		if err := c.Validate(); err != nil {
			return nil, err
		}
		if c.HasScan() && c.ScanPatternCount() > 0 {
			tests = append(tests, Test{
				ID: c.Name + ".scan", Kind: ScanKind, Core: c,
				Patterns: c.ScanPatternCount(),
				Power:    scanPower(c),
			})
		}
		if n := c.FunctionalPatternCount(); n > 0 {
			tests = append(tests, Test{
				ID: c.Name + ".func", Kind: FuncKind, Core: c,
				Patterns:     n,
				NeedFuncPins: c.PIs + c.POs,
				Power:        funcPower(c),
			})
		}
	}
	for _, g := range bist {
		if g.Cycles <= 0 {
			return nil, fmt.Errorf("sched: BIST group %s has %d cycles", g.Name, g.Cycles)
		}
		tests = append(tests, Test{
			ID: "bist." + g.Name, Kind: BISTKind,
			FixedCycles: g.Cycles, Power: g.Power,
		})
	}
	if len(tests) == 0 {
		return nil, fmt.Errorf("sched: nothing to schedule")
	}
	return tests, nil
}

func scanPower(c *testinfo.Core) float64 {
	return 1 + float64(c.TotalScanBits())/1024
}

// ScanPower is the scheduler's scan-test power estimate for a core, in the
// same arbitrary units brains.Power uses.  Exported for workload generators
// that model logic-BIST variants of a core's scan test and need the two
// power figures on a common scale.
func ScanPower(c *testinfo.Core) float64 { return scanPower(c) }

func funcPower(c *testinfo.Core) float64 {
	return 1 + float64(c.PIs+c.POs)/256
}

// ScanCycles returns the scan test time of a core at the given TAM width.
func ScanCycles(core *testinfo.Core, width int, part wrapper.Partitioner) (int, error) {
	plan, err := wrapper.DesignChains(core, width, part)
	if err != nil {
		return 0, err
	}
	return plan.ScanTestCycles(core.ScanPatternCount()), nil
}

// SaturationWidth returns the smallest TAM width beyond which a core's scan
// time stops improving (a hard core saturates once its longest chain
// dominates).  The search is capped at maxWidth.
func SaturationWidth(core *testinfo.Core, maxWidth int, part wrapper.Partitioner) (int, error) {
	if maxWidth < 1 {
		maxWidth = 1
	}
	best, err := ScanCycles(core, 1, part)
	if err != nil {
		return 0, err
	}
	sat := 1
	for w := 2; w <= maxWidth; w++ {
		c, err := ScanCycles(core, w, part)
		if err != nil {
			return 0, err
		}
		if c < best {
			best = c
			sat = w
		}
	}
	return sat, nil
}

// FuncCycles returns the functional test time given the granted functional
// pins: each pattern needs ceil(need/granted) tester cycles.
func FuncCycles(patterns, needPins, grantedPins int) (int, error) {
	if patterns == 0 {
		return 0, nil
	}
	if needPins <= 0 {
		return patterns, nil
	}
	if grantedPins <= 0 {
		return 0, fmt.Errorf("sched: functional test granted no pins")
	}
	cpp := (needPins + grantedPins - 1) / grantedPins
	return patterns * cpp, nil
}

// ControlPins computes the test-control pin cost of a set of concurrently
// active cores.  With sharing (session-based operation) clocks and resets
// stay dedicated per core, one chip SE drives every core's scan enables,
// and the test-enable lines are driven from the controller's decode, so the
// chip only pays ceil(log2(totalTE+1)) select pins.  Without sharing every
// control pin is dedicated.  BIST adds its four tester-interface inputs
// (MBS, MBR, MBC, MSI) when present.
func ControlPins(cores []*testinfo.Core, bist, shared bool) int {
	total := 0
	if shared {
		s := testinfo.ShareControlIOs(cores)
		total = s.SharedTotal
	} else {
		for _, c := range cores {
			total += c.ControlIOs()
		}
	}
	if bist {
		total += 4
	}
	return total
}

// Placement is one scheduled test with its granted resources.
type Placement struct {
	Test     Test
	Width    int // TAM wires for scan tests
	FuncPins int // granted functional pins
	Cycles   int
	// Start is the offset from the schedule (or session) origin.
	Start int
}

// End returns Start+Cycles.
func (p Placement) End() int { return p.Start + p.Cycles }

// Session is one test session of the session-based schedule (or the single
// pseudo-session holding a packed non-session schedule).
type Session struct {
	Index       int
	Placements  []Placement
	Cycles      int
	ControlPins int
	DataPins    int
	PeakPower   float64
}

// Schedule is a complete scheduling result.
type Schedule struct {
	Kind        string // "session-based", "non-session-based", "serial"
	Sessions    []Session
	TotalCycles int
	// ControlPinsMax is the largest control-pin demand of any instant.
	ControlPinsMax int
}

// TimeMS converts the cycle total to milliseconds at the given tester
// clock (the DSC tester ran scan and BIST on a common timebase; functional
// bursts run at PLL speed inside tester cycles, which is the paper's
// "timing of functional test" concern — a correctness constraint handled by
// the wrapper bypass, not a time-accounting change).
func (s *Schedule) TimeMS(testerMHz float64) float64 {
	if testerMHz <= 0 {
		testerMHz = 50
	}
	return float64(s.TotalCycles) / (testerMHz * 1e3)
}

// Utilization returns the fraction of scheduled time that carries test
// activity: the summed placement cycles over the summed session lengths
// weighted by their concurrent placements... more simply, busy-time over
// (sessions × length) is not meaningful across unequal widths, so this
// reports Σ placement-cycles / Σ session-cycles — values above 1 mean
// parallelism, higher is better.
func (s *Schedule) Utilization() float64 {
	if s.TotalCycles == 0 {
		return 0
	}
	busy := 0
	for _, sess := range s.Sessions {
		for _, p := range sess.Placements {
			busy += p.Cycles
		}
	}
	return float64(busy) / float64(s.TotalCycles)
}

// PlacementFor finds a test's placement.
func (s *Schedule) PlacementFor(id string) (sessionIdx int, p Placement, ok bool) {
	for si, sess := range s.Sessions {
		for _, pl := range sess.Placements {
			if pl.Test.ID == id {
				return si, pl, true
			}
		}
	}
	return 0, Placement{}, false
}

// maxUsefulWidth bounds width search: one wire per core chain plus a few
// for boundary-only balancing, capped to the pin budget.
func maxUsefulWidth(core *testinfo.Core, dataPins int) int {
	w := len(core.ScanChains) + 2
	if budget := dataPins / 2; w > budget {
		w = budget
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ErrInfeasible is the typed sentinel for resource-infeasibility: a session
// design (or the whole partition search) could not fit the chip's test-pin,
// functional-pin or power budget.  Callers test with errors.Is; core.RunFlow
// re-wraps it as core.ErrBudgetExceeded at the flow boundary.
var ErrInfeasible = errors.New("sched: infeasible")

// errInfeasible is the internal alias used by the hot session-design path.
var errInfeasible = ErrInfeasible

// timeCache memoizes ScanCycles per (core, width): the session partition
// enumeration evaluates the same wrapper designs thousands of times.  It is
// safe for concurrent use by the parallel partition search.
type timeCache struct {
	part wrapper.Partitioner
	mu   sync.RWMutex
	m    map[timeKey]int
}

type timeKey struct {
	core  string
	width int
}

func newTimeCache(part wrapper.Partitioner) *timeCache {
	return &timeCache{part: part, m: make(map[timeKey]int)}
}

func (tc *timeCache) scanCycles(core *testinfo.Core, width int) (int, error) {
	k := timeKey{core.Name, width}
	tc.mu.RLock()
	v, ok := tc.m[k]
	tc.mu.RUnlock()
	if ok {
		return v, nil
	}
	v, err := ScanCycles(core, width, tc.part)
	if err != nil {
		return 0, err
	}
	tc.mu.Lock()
	tc.m[k] = v
	tc.mu.Unlock()
	return v, nil
}

// almostLE compares with a tiny epsilon for power sums.
func almostLE(a, b float64) bool { return a <= b+1e-9 }

var _ = math.MaxFloat64
