package memfault

import (
	"steac/internal/obs"
)

// PackedLanes is the lane width of the bit-plane packed March simulator: one
// uint64 per storage cell where bit l carries fault copy l's value, so a
// single trace replay simulates up to 64 single-fault machines at once.
const PackedLanes = 64

var obsPackedBatches = obs.GetCounter("memfault.packed_batches")

// pbcast broadcasts a bit value across all lanes.
func pbcast(v int) uint64 {
	if v != 0 {
		return ^uint64(0)
	}
	return 0
}

// planeSite aggregates the per-lane victim-site effects attached to one
// storage cell.  Each mask names the lanes whose (single) fault is of that
// kind with this cell as victim; masks are disjoint lane sets, so effect
// ordering across kinds cannot matter — exactly the single-fault assumption
// the scalar simulator encodes by building one FaultyRAM per fault.
type planeSite struct {
	sa0, sa1 uint64 // stuck-at forcing on every store
	tfu, tfd uint64 // transition blocking on writes
	sof      uint64 // stuck-open: writes lost, reads sense-substituted
	rdf      uint64 // read-disturb: read inverts and stores back
	cfst     []cfstEffect
}

// cfstEffect is one CFst lane at its victim cell: while the aggressor holds
// aggrState the victim reads as forced.  The aggressor cell is clean in that
// lane (aggr != victim, one fault per lane), so its state is the golden
// mirror's.
type cfstEffect struct {
	lane      uint64 // single-bit lane mask
	aggr      Cell
	aggrState int
	forced    uint64 // broadcast 0 or ^0
}

// cfEffect is one CFin/CFid lane keyed by its aggressor cell: a matching
// golden transition of the aggressor (clean in that lane) updates the victim
// on that lane.  Effects trigger during a write's bit loop but apply after
// it, mirroring the scalar Write's transitions-then-coupling order — the
// victim may live at the address being written.
type cfEffect struct {
	lane   uint64
	rise   bool
	victim int  // victim cell index (Addr*Bits + Bit)
	invert bool // CFin flips the victim; CFid sets it to forced
	forced uint64
}

// drfEffect is one DRF lane: on Pause the victim decays to forced.
type drfEffect struct {
	lane   uint64
	victim int
	forced uint64
}

// packableKind reports whether the bit-plane engine models kind exactly.
// Address-decoder faults remap whole accesses (a per-lane address cannot be
// packed into shared plane indices) and port-B stuck-ats need the ReadB
// port; both fall back to the scalar worker.
func packableKind(k Kind) bool {
	switch k {
	case SA0, SA1, TFUp, TFDown, SOF, RDF, CFin, CFid, CFst, DRF:
		return true
	}
	return false
}

// PackedWorker is one goroutine's bit-plane packed view of a CoverageSim: a
// 64-lane scratch machine replaying each golden trace once per batch of up
// to 64 faults instead of once per fault.  Lanes are independent single-
// fault machines; lane l of every plane word is bit-for-bit the scalar
// FaultyRAM built for fault l.  Not safe for concurrent use; create one per
// worker with NewPackedWorker.
type PackedWorker struct {
	sim *CoverageSim

	// Replay state, rebuilt per trace.
	plane  []uint64 // [addr*Bits+bit] lane-word of cell values
	sense  []uint64 // per bit position: sense-amp lane word
	gcells []uint64 // golden mirror (every clean cell equals it)

	// Per-batch fault structures.  siteAt/cfAt are dense cell-indexed views
	// (nil = clean cell) so the replay hot loop never touches a map;
	// touched records which entries to clear for the next batch.
	siteAt  []*planeSite
	cfAt    [][]cfEffect
	touched []int
	drf     []drfEffect
	hot     []bool // addresses holding any victim cell (masked replay path)
	aggrHot []bool // addresses holding any CFin/CFid aggressor
	pend    []cfEffect

	scalar *CoverageWorker // AF / SAB0 / SAB1 / invalid-fault fallback
}

// NewPackedWorker allocates the per-goroutine packed scratch machine.
func (s *CoverageSim) NewPackedWorker() (*PackedWorker, error) {
	scalar, err := s.NewWorker()
	if err != nil {
		return nil, err
	}
	cells := s.cfg.Words * s.cfg.Bits
	return &PackedWorker{
		sim:     s,
		plane:   make([]uint64, cells),
		sense:   make([]uint64, s.cfg.Bits),
		gcells:  make([]uint64, s.cfg.Words),
		siteAt:  make([]*planeSite, cells),
		cfAt:    make([][]cfEffect, cells),
		hot:     make([]bool, s.cfg.Words),
		aggrHot: make([]bool, s.cfg.Words),
		scalar:  scalar,
	}, nil
}

// DetectBatch simulates every fault of the batch and writes its verdict to
// det[i], bit-identical to len(faults) scalar CoverageWorker.Detect calls.
// Packable kinds share word-parallel trace replays in chunks of PackedLanes;
// the rest (and ill-formed faults) go through the embedded scalar worker, so
// errs[i] — filled when errs is non-nil — carries exactly the error Detect
// would have returned.  det (and errs when non-nil) must be at least
// len(faults) long.
func (w *PackedWorker) DetectBatch(faults []Fault, det []bool, errs []error) {
	for base := 0; base < len(faults); base += PackedLanes {
		end := base + PackedLanes
		if end > len(faults) {
			end = len(faults)
		}
		var esub []error
		if errs != nil {
			esub = errs[base:end]
		}
		w.detectBatch(faults[base:end], det[base:end], esub)
	}
}

func (w *PackedWorker) detectBatch(faults []Fault, det []bool, errs []error) {
	var packable uint64
	for i, f := range faults {
		if packableKind(f.Kind) && f.Validate(w.sim.cfg) == nil {
			packable |= 1 << uint(i)
		}
	}
	if packable != 0 {
		w.install(faults, packable)
		var detW uint64
		for _, tr := range w.sim.traces {
			w.resetState()
			detW |= w.replay(tr, packable)
			if detW == packable {
				break // every pending lane detected; verdicts are final
			}
		}
		for i := range faults {
			if packable>>uint(i)&1 == 1 {
				det[i] = detW>>uint(i)&1 == 1
				if errs != nil {
					errs[i] = nil
				}
			}
		}
		obsPackedBatches.Add(1)
	}
	for i, f := range faults {
		if packable>>uint(i)&1 == 1 {
			continue
		}
		d, err := w.scalar.Detect(f)
		det[i] = d
		if errs != nil {
			errs[i] = err
		}
	}
}

// site returns (creating if needed) the effect record of one victim cell.
func (w *PackedWorker) site(idx int) *planeSite {
	if w.siteAt[idx] == nil {
		w.siteAt[idx] = &planeSite{}
		w.touched = append(w.touched, idx)
	}
	return w.siteAt[idx]
}

// install builds the per-batch masks for the packable lanes of faults.
func (w *PackedWorker) install(faults []Fault, packable uint64) {
	for _, idx := range w.touched {
		w.siteAt[idx] = nil
		w.cfAt[idx] = nil
	}
	w.touched = w.touched[:0]
	w.drf = w.drf[:0]
	for i := range w.hot {
		w.hot[i] = false
		w.aggrHot[i] = false
	}
	bits := w.sim.cfg.Bits
	for i, f := range faults {
		lane := uint64(1) << uint(i)
		if packable&lane == 0 {
			continue
		}
		vIdx := f.Victim.Addr*bits + f.Victim.Bit
		w.hot[f.Victim.Addr] = true
		switch f.Kind {
		case SA0:
			w.site(vIdx).sa0 |= lane
		case SA1:
			w.site(vIdx).sa1 |= lane
		case TFUp:
			w.site(vIdx).tfu |= lane
		case TFDown:
			w.site(vIdx).tfd |= lane
		case SOF:
			w.site(vIdx).sof |= lane
		case RDF:
			w.site(vIdx).rdf |= lane
		case CFst:
			s := w.site(vIdx)
			s.cfst = append(s.cfst, cfstEffect{
				lane: lane, aggr: f.Aggr, aggrState: f.AggrState, forced: pbcast(f.Forced),
			})
		case CFin, CFid:
			aIdx := f.Aggr.Addr*bits + f.Aggr.Bit
			w.aggrHot[f.Aggr.Addr] = true
			if w.cfAt[aIdx] == nil {
				w.touched = append(w.touched, aIdx)
			}
			w.cfAt[aIdx] = append(w.cfAt[aIdx], cfEffect{
				lane: lane, rise: f.AggrRise, victim: vIdx,
				invert: f.Kind == CFin, forced: pbcast(f.Forced),
			})
		case DRF:
			w.drf = append(w.drf, drfEffect{lane: lane, victim: vIdx, forced: pbcast(f.Forced)})
		}
	}
}

// resetState returns every lane to the power-on state of its single-fault
// machine: all-zero cells and sense latches, with SA1 victims initialized to
// 1 — the packed equivalent of FaultyRAM.Reset per lane.
func (w *PackedWorker) resetState() {
	for i := range w.plane {
		w.plane[i] = 0
	}
	for i := range w.sense {
		w.sense[i] = 0
	}
	for i := range w.gcells {
		w.gcells[i] = 0
	}
	for _, idx := range w.touched {
		if s := w.siteAt[idx]; s != nil && s.sa1 != 0 {
			w.plane[idx] |= s.sa1
		}
	}
}

// replay runs one golden trace against the packed machine and returns the
// lanes whose tester-visible reads diverged.  Inactive lanes hold golden
// values on every cell, so masking with active only enables the early exit.
func (w *PackedWorker) replay(tr *goldenTrace, active uint64) uint64 {
	var det uint64
	for i := range tr.accesses {
		if tr.pause[i] {
			w.pause()
		}
		acc := tr.accesses[i]
		if acc.Op.Read {
			det |= w.read(acc.Addr, tr.vals[i]) & active
			if det == active {
				return det // detection is sticky; the rest cannot undo it
			}
		} else {
			w.write(acc.Addr, tr.vals[i])
		}
	}
	return det
}

// write mirrors FaultyRAM.Write across all lanes.  Clean addresses (no
// victim cell, no coupling aggressor) take the broadcast fast path: every
// lane stores the golden word.
func (w *PackedWorker) write(addr int, data uint64) {
	bits := w.sim.cfg.Bits
	base := addr * bits
	if !w.hot[addr] && !w.aggrHot[addr] {
		for b := 0; b < bits; b++ {
			w.plane[base+b] = pbcast(int(data >> uint(b) & 1))
		}
		w.gcells[addr] = data
		return
	}
	oldGolden := w.gcells[addr]
	w.pend = w.pend[:0]
	for b := 0; b < bits; b++ {
		wantBit := int(data >> uint(b) & 1)
		old := w.plane[base+b]
		v := pbcast(wantBit)
		if s := w.siteAt[base+b]; s != nil {
			if wantBit == 1 {
				v &^= s.tfu &^ old // 0→1 blocked: those lanes stay 0
			} else {
				v |= s.tfd & old // 1→0 blocked: those lanes stay 1
			}
			v = (v &^ s.sa0) | s.sa1
			v = (v &^ s.sof) | (old & s.sof) // write lost on stuck-open lanes
		}
		w.plane[base+b] = v
		if w.aggrHot[addr] {
			// A CFin/CFid aggressor is clean in its own lane, so its
			// transitions are exactly the golden transitions.
			if gOld := int(oldGolden >> uint(b) & 1); gOld != wantBit {
				rise := wantBit == 1
				for _, eff := range w.cfAt[base+b] {
					if eff.rise == rise {
						w.pend = append(w.pend, eff)
					}
				}
			}
		}
	}
	w.gcells[addr] = data
	for _, eff := range w.pend {
		p := &w.plane[eff.victim]
		if eff.invert {
			*p ^= eff.lane
		} else {
			*p = (*p &^ eff.lane) | (eff.forced & eff.lane)
		}
	}
}

// read mirrors FaultyRAM.Read across all lanes and returns the lanes whose
// word diverges from the golden want.  Clean addresses hold golden values in
// every lane, so they only refresh the sense latches.
func (w *PackedWorker) read(addr int, want uint64) uint64 {
	bits := w.sim.cfg.Bits
	base := addr * bits
	if !w.hot[addr] {
		for b := 0; b < bits; b++ {
			w.sense[b] = pbcast(int(want >> uint(b) & 1))
		}
		return 0
	}
	var diff uint64
	for b := 0; b < bits; b++ {
		v := w.plane[base+b]
		if s := w.siteAt[base+b]; s != nil {
			for _, eff := range s.cfst {
				if int(w.gcells[eff.aggr.Addr]>>uint(eff.aggr.Bit)&1) == eff.aggrState {
					v = (v &^ eff.lane) | (eff.forced & eff.lane)
				}
			}
			if s.rdf != 0 {
				v ^= s.rdf
				p := &w.plane[base+b]
				*p = (*p &^ s.rdf) | (v & s.rdf) // disturb stores back
			}
			if s.sof != 0 {
				v = (v &^ s.sof) | (w.sense[b] & s.sof)
			}
		}
		w.sense[b] = v
		diff |= v ^ pbcast(int(want>>uint(b)&1))
	}
	return diff
}

// pause mirrors FaultyRAM.Pause: every DRF victim decays to its leakage
// value on its lane.
func (w *PackedWorker) pause() {
	for _, d := range w.drf {
		p := &w.plane[d.victim]
		*p = (*p &^ d.lane) | (d.forced & d.lane)
	}
}
