package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"steac/internal/campaign"
)

// Client is a typed HTTP client for the /v1/fabric/* protocol.  Non-2xx
// responses are decoded back into the package sentinels, so errors.Is
// works the same against a remote coordinator as against a local one.
type Client struct {
	// Base is the coordinator base URL, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP overrides the http.Client; nil means http.DefaultClient.
	HTTP *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) do(ctx context.Context, method, path string, in, out interface{}) error {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("fabric: marshal %s: %w", path, err)
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, body)
	if err != nil {
		return fmt.Errorf("fabric: %s %s: %w", method, path, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("fabric: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeWireError(resp)
	}
	if out == nil {
		return nil
	}
	if raw, ok := out.(*[]byte); ok {
		*raw, err = io.ReadAll(resp.Body)
		if err != nil {
			return fmt.Errorf("fabric: read %s: %w", path, err)
		}
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("fabric: decode %s: %w", path, err)
	}
	return nil
}

// Submit registers a campaign with the coordinator.
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (CampaignInfo, error) {
	var info CampaignInfo
	err := c.do(ctx, http.MethodPost, "/v1/fabric/campaigns", req, &info)
	return info, err
}

// Campaigns lists the coordinator's campaigns.
func (c *Client) Campaigns(ctx context.Context) ([]CampaignInfo, error) {
	var out []CampaignInfo
	err := c.do(ctx, http.MethodGet, "/v1/fabric/campaigns", nil, &out)
	return out, err
}

// CampaignInfo fetches one campaign by (full or short) fingerprint.
func (c *Client) CampaignInfo(ctx context.Context, fp string) (CampaignInfo, error) {
	var info CampaignInfo
	err := c.do(ctx, http.MethodGet, "/v1/fabric/campaigns/"+url.PathEscape(fp), nil, &info)
	return info, err
}

// Progress fetches the fabric-wide progress of one campaign.
func (c *Client) Progress(ctx context.Context, fp string) (Progress, error) {
	var p Progress
	err := c.do(ctx, http.MethodGet, "/v1/fabric/campaigns/"+url.PathEscape(fp)+"/progress", nil, &p)
	return p, err
}

// Report fetches the merged report JSON; ErrNotDone until the campaign
// completes.
func (c *Client) Report(ctx context.Context, fp string) ([]byte, error) {
	var raw []byte
	err := c.do(ctx, http.MethodGet, "/v1/fabric/campaigns/"+url.PathEscape(fp)+"/report", nil, &raw)
	return raw, err
}

// Lease claims shards.
func (c *Client) Lease(ctx context.Context, req LeaseRequest) (LeaseResponse, error) {
	var resp LeaseResponse
	err := c.do(ctx, http.MethodPost, "/v1/fabric/lease", req, &resp)
	return resp, err
}

// Heartbeat renews leases.
func (c *Client) Heartbeat(ctx context.Context, req HeartbeatRequest) (HeartbeatResponse, error) {
	var resp HeartbeatResponse
	err := c.do(ctx, http.MethodPost, "/v1/fabric/heartbeat", req, &resp)
	return resp, err
}

// Complete reports one journaled shard.
func (c *Client) Complete(ctx context.Context, req CompleteRequest) (CompleteResponse, error) {
	var resp CompleteResponse
	err := c.do(ctx, http.MethodPost, "/v1/fabric/complete", req, &resp)
	return resp, err
}

// Node is one fabric worker process: it leases shards from a coordinator,
// simulates them on a local pool, journals outcomes into the shared
// checkpoint store under its own writer name, and acknowledges them.
type Node struct {
	// ID is the node's name — its lease identity and its journal writer
	// name, so it must satisfy the writer-name rules ([A-Za-z0-9._-]).
	ID string
	// Client reaches the coordinator.
	Client *Client
	// Dir is the checkpoint root shared with the coordinator (campaigns
	// live in Dir/<fingerprint[:16]>).
	Dir string
	// Workers is the local simulation pool size (0 = GOMAXPROCS).
	Workers int
	// LeaseMax caps shards requested per claim (0 = coordinator default).
	LeaseMax int
	// Poll is the idle wait between claims when no work was granted
	// (0 = 50ms).
	Poll time.Duration

	// Test hooks — all optional.
	// ShardDelay pauses each worker for the duration before simulating a
	// shard, widening chaos-injection windows.
	ShardDelay time.Duration
	// StallHeartbeat, when non-nil, runs before every heartbeat; sleeping
	// in it simulates a partitioned or GC-stalled node.
	StallHeartbeat func()
	// OnShard observes every shard the node journals and acknowledges.
	OnShard func(fingerprint string, shard int)
}

func (n *Node) workers() int {
	if n.Workers > 0 {
		return n.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (n *Node) poll() time.Duration {
	if n.Poll > 0 {
		return n.Poll
	}
	return 50 * time.Millisecond
}

// retry runs call until it succeeds, returns a typed protocol error, or
// ctx fires; transient transport failures (a coordinator mid-restart) back
// off and try again.
func (n *Node) retry(ctx context.Context, call func() error) error {
	backoff := 10 * time.Millisecond
	for {
		err := call()
		if err == nil || isProtocolError(err) {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		if backoff < 500*time.Millisecond {
			backoff *= 2
		}
	}
}

func isProtocolError(err error) bool {
	for _, w := range wireCodes {
		if errors.Is(err, w.err) {
			return true
		}
	}
	return false
}

// heldLeases tracks the shards a node currently owes heartbeats for.
type heldLeases struct {
	mu     sync.Mutex
	shards map[int]struct{}
}

func (h *heldLeases) add(idx int)    { h.mu.Lock(); h.shards[idx] = struct{}{}; h.mu.Unlock() }
func (h *heldLeases) remove(idx int) { h.mu.Lock(); delete(h.shards, idx); h.mu.Unlock() }
func (h *heldLeases) list() []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]int, 0, len(h.shards))
	for idx := range h.shards {
		out = append(out, idx)
	}
	return out
}

// RunCampaign works one campaign to completion (or until ctx fires): plan
// it locally from the coordinator's spec, verify the fingerprints agree,
// open the shared store as writer n.ID, then claim/simulate/journal/ack
// until the coordinator reports the campaign done.
func (n *Node) RunCampaign(ctx context.Context, fp string) error {
	if n.ID == "" {
		return fmt.Errorf("%w: node needs an ID", ErrBadRequest)
	}
	var info CampaignInfo
	err := n.retry(ctx, func() (e error) {
		info, e = n.Client.CampaignInfo(ctx, fp)
		return e
	})
	if err != nil {
		return err
	}
	spec, err := campaign.Decode(info.Kind, info.Spec)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrSpecMismatch, err)
	}
	plan, exec, err := campaign.PlanCampaign(ctx, spec, info.ShardSize)
	if err != nil {
		return err
	}
	if plan.Fingerprint != info.Fingerprint {
		return fmt.Errorf("%w: local %s.. vs coordinator %s..",
			ErrSpecMismatch, plan.Fingerprint[:12], info.Fingerprint[:12])
	}
	store, err := campaign.OpenStore(filepath.Join(n.Dir, plan.Fingerprint[:16]), plan, n.ID)
	if err != nil {
		return err
	}
	defer store.Close()
	plan = store.Plan() // manifest geometry is authoritative

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	held := &heldLeases{shards: map[int]struct{}{}}
	leases := make(chan WireLease)
	errs := make(chan error, n.workers()+1)

	var wg sync.WaitGroup
	for i := 0; i < n.workers(); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := n.workLoop(runCtx, exec, plan, store, held, leases); err != nil {
				select {
				case errs <- err:
				default:
				}
				cancel()
			}
		}()
	}

	// Heartbeat every TTL/3 once the first lease reveals the TTL.
	var hbOnce sync.Once
	startHeartbeat := func(ttl time.Duration) {
		hbOnce.Do(func() {
			wg.Add(1)
			go func() {
				defer wg.Done()
				n.heartbeatLoop(runCtx, plan.Fingerprint, ttl, held)
			}()
		})
	}

	claimErr := func() error {
		defer close(leases)
		for {
			var resp LeaseResponse
			err := n.retry(runCtx, func() (e error) {
				resp, e = n.Client.Lease(runCtx, LeaseRequest{
					Node: n.ID, Campaign: plan.Fingerprint, Max: n.LeaseMax,
				})
				return e
			})
			if err != nil {
				return err
			}
			if ttl := time.Duration(resp.TTLMS) * time.Millisecond; ttl > 0 {
				startHeartbeat(ttl)
			}
			if resp.Done {
				return nil
			}
			if len(resp.Leases) == 0 {
				select {
				case <-runCtx.Done():
					return runCtx.Err()
				case <-time.After(n.poll()):
				}
				continue
			}
			for _, lease := range resp.Leases {
				held.add(lease.Shard)
				select {
				case leases <- lease:
				case <-runCtx.Done():
					return runCtx.Err()
				}
			}
		}
	}()
	cancel()
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
	}
	if claimErr != nil && !errors.Is(claimErr, context.Canceled) {
		return claimErr
	}
	return ctx.Err()
}

// workLoop simulates leases from the channel: validate the shard key
// against the local plan, simulate, journal (fsync), then acknowledge.
func (n *Node) workLoop(ctx context.Context, exec campaign.Executor, plan campaign.Plan,
	store *campaign.Store, held *heldLeases, leases <-chan WireLease) error {
	var worker campaign.Worker
	for {
		var lease WireLease
		var ok bool
		select {
		case <-ctx.Done():
			return nil
		case lease, ok = <-leases:
			if !ok {
				return nil
			}
		}
		if lease.Key != plan.Key(lease.Shard) {
			held.remove(lease.Shard)
			return fmt.Errorf("%w: shard %d key %s.. vs local %s..",
				ErrSpecMismatch, lease.Shard, lease.Key[:12], plan.Key(lease.Shard)[:12])
		}
		if n.ShardDelay > 0 {
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(n.ShardDelay):
			}
		}
		if worker == nil {
			w, err := exec.NewWorker()
			if err != nil {
				return err
			}
			worker = w
		}
		lo, hi := plan.Bounds(lease.Shard)
		out := make([]int64, hi-lo)
		if err := worker.Run(ctx, lo, hi, out); err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		// Durability order: fsync the outcome into our journal before the
		// coordinator hears about it, so every acknowledged shard
		// survives a SIGKILL.
		if err := store.Append(lease.Shard, out); err != nil {
			return err
		}
		err := n.retry(ctx, func() error {
			_, e := n.Client.Complete(ctx, CompleteRequest{
				Node: n.ID, Campaign: plan.Fingerprint, Shard: lease.Shard,
			})
			return e
		})
		held.remove(lease.Shard)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		obsNodeShards.Add(1)
		if n.OnShard != nil {
			n.OnShard(plan.Fingerprint, lease.Shard)
		}
	}
}

// heartbeatLoop renews the node's held leases every ttl/3.  Lost leases
// are dropped from the held set; the worker holding one may still finish
// and journal it — completion is idempotent and the outcome deterministic,
// so a stolen-and-still-completed shard is benign.
func (n *Node) heartbeatLoop(ctx context.Context, fp string, ttl time.Duration, held *heldLeases) {
	every := ttl / 3
	if every <= 0 {
		every = time.Millisecond
	}
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		if n.StallHeartbeat != nil {
			n.StallHeartbeat()
		}
		shards := held.list()
		if len(shards) == 0 {
			continue
		}
		resp, err := n.Client.Heartbeat(ctx, HeartbeatRequest{
			Node: n.ID, Campaign: fp, Shards: shards,
		})
		if err != nil {
			continue // transient; the next tick retries
		}
		for _, idx := range resp.Lost {
			held.remove(idx)
			obsNodeLost.Add(1)
		}
	}
}

// Run is daemon mode: poll the coordinator's campaign list and work every
// running campaign until ctx fires.  Used by `steacd -join`.
func (n *Node) Run(ctx context.Context) error {
	for {
		infos, err := n.Client.Campaigns(ctx)
		if err == nil {
			for _, info := range infos {
				if info.State != "running" {
					continue
				}
				if err := n.RunCampaign(ctx, info.Fingerprint); err != nil && ctx.Err() == nil {
					return err
				}
				if ctx.Err() != nil {
					return ctx.Err()
				}
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(n.poll() * 4):
		}
	}
}
