package wrapper

import (
	"math/rand"
	"testing"

	"steac/internal/testinfo"
)

// randSoftCore draws a random soft core: 1–8 physical chains of 1–600 bits
// (the rebalancer's input is a soft core's existing stitch, so the chain
// shape is arbitrary), occasionally a chain-free corner case.
func randSoftCore(r *rand.Rand) *testinfo.Core {
	c := &testinfo.Core{
		Name:        "prop",
		Soft:        true,
		Clocks:      []string{"ck"},
		ScanEnables: []string{"se"},
		PIs:         r.Intn(64),
		POs:         r.Intn(64),
	}
	n := 1 + r.Intn(8)
	for i := 0; i < n; i++ {
		c.ScanChains = append(c.ScanChains, testinfo.ScanChain{
			Name:   "c" + string(rune('a'+i)),
			Length: 1 + r.Intn(600),
			In:     "si" + string(rune('a'+i)),
			Out:    "so" + string(rune('a'+i)),
			Clock:  "ck",
		})
	}
	c.Patterns = []testinfo.PatternSet{
		{Name: "scan", Type: testinfo.Scan, Count: 1 + r.Intn(500), Seed: r.Int63()},
	}
	return c
}

// TestRebalanceProperties checks the rebalancer's contract over random soft
// cores and TAM widths:
//
//  1. conservation — the reconfigured core holds exactly the original's
//     scan bits (no flop gained or lost by re-stitching);
//  2. balance — no reconfigured chain exceeds ceil(total/width) bits, and
//     the longest and shortest chains differ by at most one bit;
//  3. fit — at most width chains, so the hard plan never needs more TAM
//     wires than assigned, and its internal-scan max length matches the
//     soft-plan estimate the scheduler used;
//  4. idempotence — rebalancing the rebalanced core is a fixed point: the
//     chain length multiset and the plan's test time do not change.
func TestRebalanceProperties(t *testing.T) {
	r := rand.New(rand.NewSource(0xdf7))
	for trial := 0; trial < 300; trial++ {
		core := randSoftCore(r)
		width := 1 + r.Intn(10)
		re, plan, err := Rebalance(core, width)
		if err != nil {
			t.Fatalf("trial %d (width %d): %v", trial, width, err)
		}

		// 1. Conservation.
		if got, want := re.TotalScanBits(), core.TotalScanBits(); got != want {
			t.Fatalf("trial %d: scan bits %d, want %d", trial, got, want)
		}

		// 2. Balance.
		total := core.TotalScanBits()
		bound := (total + width - 1) / width
		ls := re.ChainLengths() // sorted descending
		for _, l := range ls {
			if l > bound {
				t.Fatalf("trial %d: chain length %d exceeds ceil(%d/%d)=%d",
					trial, l, total, width, bound)
			}
		}
		if len(ls) > 0 && ls[0]-ls[len(ls)-1] > 1 {
			t.Fatalf("trial %d: unbalanced chains %v", trial, ls)
		}

		// 3. Fit.
		if len(re.ScanChains) > width {
			t.Fatalf("trial %d: %d chains for width %d", trial, len(re.ScanChains), width)
		}
		softPlan, err := DesignChains(core, width, LPT)
		if err != nil {
			t.Fatalf("trial %d: soft plan: %v", trial, err)
		}
		if plan.MaxLength() != softPlan.MaxLength() {
			t.Fatalf("trial %d: hard plan max %d, soft estimate %d",
				trial, plan.MaxLength(), softPlan.MaxLength())
		}

		// 4. Idempotence.
		re2, plan2, err := Rebalance(re, width)
		if err != nil {
			t.Fatalf("trial %d: second rebalance: %v", trial, err)
		}
		ls2 := re2.ChainLengths()
		if len(ls2) != len(ls) {
			t.Fatalf("trial %d: chain count changed on re-rebalance: %v vs %v", trial, ls2, ls)
		}
		for i := range ls {
			if ls2[i] != ls[i] {
				t.Fatalf("trial %d: chain lengths changed on re-rebalance: %v vs %v", trial, ls2, ls)
			}
		}
		p := core.Patterns[0].Count
		if plan2.ScanTestCycles(p) != plan.ScanTestCycles(p) {
			t.Fatalf("trial %d: test time changed on re-rebalance: %d vs %d",
				trial, plan2.ScanTestCycles(p), plan.ScanTestCycles(p))
		}
	}
}
