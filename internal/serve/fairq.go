package serve

import (
	"sync"

	"steac/internal/obs"
)

// fairQueue replaces the single FIFO admission channel with deficit-
// round-robin fair queueing across tenants: each tenant gets its own
// bounded FIFO lane, and workers dequeue by cycling over the lanes that
// hold work, draining up to `weight` requests from a lane per visit
// before the pointer moves on.  One tenant's campaign burst therefore
// costs other tenants at most its weight share of the pool, never the
// whole queue — the property the starvation test in tenant_test.go pins.
//
// Bounds are per-lane: a push finding the tenant's own lane full is
// ErrQueueFull, so a greedy tenant exhausts only its own depth and a
// quiet tenant can always enqueue.  With a single tenant (anonymous
// mode) the behaviour degenerates to exactly the old global FIFO.
type fairQueue struct {
	mu    sync.Mutex
	cond  *sync.Cond
	depth int // per-lane capacity

	lanes  map[string]*queueLane
	active []*queueLane // lanes holding work, DRR ring order
	cur    int          // ring position of the lane being served
	total  int
	closed bool
}

// queueLane is one tenant's FIFO plus its DRR accounting.
type queueLane struct {
	id      string
	weight  int
	deficit int
	jobs    []*job
	gauge   *obs.Gauge // serve.tenant.<id>.queue_depth
}

func newFairQueue(perLaneDepth int) *fairQueue {
	q := &fairQueue{depth: perLaneDepth, lanes: map[string]*queueLane{}}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues j on tenant t's lane.  ErrQueueFull when the lane is at
// capacity, ErrDraining after close.
func (q *fairQueue) push(t *tenantState, j *job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrDraining
	}
	lane := q.lanes[t.ID]
	if lane == nil {
		lane = &queueLane{id: t.ID, weight: t.Weight, gauge: t.queueDepth}
		q.lanes[t.ID] = lane
	}
	if len(lane.jobs) >= q.depth {
		return ErrQueueFull
	}
	if len(lane.jobs) == 0 {
		q.active = append(q.active, lane)
	}
	lane.jobs = append(lane.jobs, j)
	q.total++
	lane.gauge.Set(int64(len(lane.jobs)))
	q.cond.Signal()
	return nil
}

// pop blocks until a job is available (returning it in DRR order) or the
// queue is closed and empty (returning ok=false).
func (q *fairQueue) pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.total > 0 {
			return q.popLocked(), true
		}
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
}

// popLocked runs one DRR step.  Each arrival of the ring pointer at a
// lane tops its deficit up by its weight; the lane is then served while
// its deficit lasts, after which the pointer advances.  Every visit adds
// at least one credit, so the loop always progresses.
func (q *fairQueue) popLocked() *job {
	if q.cur >= len(q.active) {
		q.cur = 0
	}
	lane := q.active[q.cur]
	if lane.deficit < 1 {
		lane.deficit += lane.weight
	}
	lane.deficit--
	j := lane.jobs[0]
	lane.jobs[0] = nil
	lane.jobs = lane.jobs[1:]
	q.total--
	lane.gauge.Set(int64(len(lane.jobs)))
	if len(lane.jobs) == 0 {
		// An idle lane leaves the ring and forfeits leftover credit (DRR
		// resets the deficit of empty queues, or an idle tenant would
		// bank an unbounded burst allowance).
		lane.deficit = 0
		q.active = append(q.active[:q.cur], q.active[q.cur+1:]...)
	} else if lane.deficit < 1 {
		q.cur++
	}
	return j
}

// len reports the total queued jobs across lanes.
func (q *fairQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.total
}

// close stops the queue: pending jobs still drain via pop, then pops
// return ok=false.  Pushes after close are ErrDraining.
func (q *fairQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
