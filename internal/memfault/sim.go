package memfault

import (
	"fmt"
	"sort"

	"steac/internal/march"
	"steac/internal/memory"
)

// CoverageSim is the prepared, immutable state of a March coverage
// campaign: the validated algorithm expanded into one golden trace per data
// background.  It is computed once and shared read-only across any number
// of workers; per-goroutine scratch state lives in CoverageWorker.  The
// campaign job runner (internal/campaign) uses it to simulate arbitrary
// fault subsets in shards, and CoverageContext fans its own workers over
// the same code path — both aggregate through Assemble, so a sharded,
// checkpointed campaign is bit-identical to an in-process one.
type CoverageSim struct {
	algName string
	cfg     memory.Config
	traces  []*goldenTrace
}

// NewCoverageSim validates alg and precomputes the golden traces for cfg
// under opt (Background/Backgrounds/PauseBefore are the semantic fields;
// Workers and the report caps are ignored here).
func NewCoverageSim(alg march.Algorithm, cfg memory.Config, opt Options) (*CoverageSim, error) {
	if err := alg.Validate(); err != nil {
		return nil, err
	}
	traces, err := tracesFor(alg, cfg, opt)
	if err != nil {
		return nil, err
	}
	return &CoverageSim{algName: alg.Name, cfg: cfg, traces: traces}, nil
}

// Algorithm returns the name of the prepared March algorithm.
func (s *CoverageSim) Algorithm() string { return s.algName }

// CoverageWorker is one goroutine's view of a CoverageSim: a reusable
// fault-machine scratch buffer.  Not safe for concurrent use; create one
// per worker with NewWorker.
type CoverageWorker struct {
	sim     *CoverageSim
	scratch *FaultyRAM
	buf     [1]Fault
}

// NewWorker allocates the per-goroutine scratch machine.
func (s *CoverageSim) NewWorker() (*CoverageWorker, error) {
	scratch, err := NewFaulty(s.cfg, nil)
	if err != nil {
		return nil, err
	}
	return &CoverageWorker{sim: s, scratch: scratch}, nil
}

// Detect simulates the single fault f against every prepared background
// trace and reports whether any run detects it.  The outcome depends only
// on the fault and the prepared traces, never on worker identity or
// simulation order.
func (w *CoverageWorker) Detect(f Fault) (bool, error) {
	w.buf[0] = f
	for _, tr := range w.sim.traces {
		if err := w.scratch.Reset(w.buf[:]); err != nil {
			return false, fmt.Errorf("memfault: simulating %s: %w", f, err)
		}
		if det := tr.replay(w.scratch); det.Detected {
			return true, nil
		}
	}
	return false, nil
}

// Assemble builds the Campaign report from per-fault detection outcomes,
// aggregating in fault-list order exactly like a serial run — it is the
// single aggregation path shared by CoverageContext and the sharded
// campaign runner, which is what makes their reports bit-identical.
// detected[i] is the outcome of faults[i]; opt supplies the Undetected
// report cap.  Obs totals are published here, once per campaign.
func Assemble(algName string, faults []Fault, detected []bool, opt Options) Campaign {
	camp := Campaign{Algorithm: algName}
	if len(faults) == 0 {
		return camp
	}
	maxUndetected := opt.undetectedCap()
	byClass := make(map[string]*ClassCoverage)
	for i, f := range faults {
		camp.Total++
		cc := byClass[f.Kind.Class()]
		if cc == nil {
			cc = &ClassCoverage{Class: f.Kind.Class()}
			byClass[f.Kind.Class()] = cc
		}
		cc.Total++
		if detected[i] {
			camp.Detected++
			cc.Detected++
		} else if maxUndetected < 0 || len(camp.Undetected) < maxUndetected {
			camp.Undetected = append(camp.Undetected, f)
		}
	}
	classes := make([]string, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		camp.ByClass = append(camp.ByClass, *byClass[c])
	}
	obsCampaigns.Add(1)
	obsFaultsSim.Add(int64(camp.Total))
	obsFaultsDet.Add(int64(camp.Detected))
	return camp
}
