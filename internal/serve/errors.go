package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"steac/internal/core"
	"steac/internal/sched"
	"steac/internal/stil"
)

// The daemon's v1 error contract: every non-2xx response carries the wire
// envelope {"error": <human message>, "code": <machine name>}.  The code
// names one of the package sentinels below, so a programmatic caller — the
// serve.Client in client.go is the reference implementation — can
// reconstruct the typed error across the wire and branch on errors.Is
// instead of string-matching HTTP bodies.

// ErrQueueFull is the admission-control sentinel: the request was
// well-formed but the caller's fair-queue lane has no room.  The HTTP
// layer maps it to 429 Too Many Requests with a Retry-After hint.
var ErrQueueFull = errors.New("serve: queue full")

// ErrDraining is returned for new work submitted after Drain began; the
// HTTP layer maps it to 503 Service Unavailable so load balancers move on
// while in-flight requests finish.
var ErrDraining = errors.New("serve: draining")

// ErrUnauthorized is the identity sentinel: the daemon runs with a tenant
// set and the request carried no API key, or one that matches no tenant.
// The HTTP layer maps it to 401 Unauthorized.
var ErrUnauthorized = errors.New("serve: unauthorized")

// ErrQuotaExceeded is the per-tenant admission sentinel: the caller was
// authenticated but its token-bucket rate limit is empty or its
// concurrent-job quota is already in use.  The HTTP layer maps it to 429
// Too Many Requests with a Retry-After hint.  Distinct from ErrQueueFull,
// which reports pressure on the queue itself rather than on the tenant's
// allowance.
var ErrQuotaExceeded = errors.New("serve: tenant quota exceeded")

// ErrNotFound is the lookup sentinel (no such job, or a job owned by a
// different tenant — ownership is not disclosed).  Maps to 404.
var ErrNotFound = errors.New("serve: not found")

// ErrBadRequest is the client-fault sentinel: malformed bodies, unknown
// names, infeasible budgets.  The concrete message travels alongside it.
// Maps to 400.
var ErrBadRequest = errors.New("serve: bad request")

// errBadRequest marks client-side failures (malformed requests, unknown
// names) so the HTTP layer can answer 400 instead of 500.  It matches
// ErrBadRequest under errors.Is so clients need only the sentinel.
type errBadRequest struct{ err error }

func (e errBadRequest) Error() string { return e.err.Error() }
func (e errBadRequest) Unwrap() error { return e.err }
func (e errBadRequest) Is(target error) bool {
	return target == ErrBadRequest
}

func badRequestf(format string, args ...interface{}) error {
	return errBadRequest{fmt.Errorf(format, args...)}
}

// wireError is the v1 JSON error envelope.
type wireError struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// Wire codes.  Stable API surface: clients dispatch on these strings.
const (
	codeUnauthorized = "unauthorized"
	codeQuota        = "quota_exceeded"
	codeQueueFull    = "queue_full"
	codeDraining     = "draining"
	codeNotFound     = "not_found"
	codeBadRequest   = "bad_request"
	codeTimeout      = "timeout"
	codeCanceled     = "canceled"
	codeInternal     = "internal"
)

// wireFor maps an error onto its HTTP status and wire code: client-side
// failures (bad requests, infeasible budgets, STIL syntax) are 4xx,
// deadlines 504, everything unrecognized 500/internal.
func wireFor(err error) (status int, code string) {
	switch {
	case errors.Is(err, ErrUnauthorized):
		return http.StatusUnauthorized, codeUnauthorized
	case errors.Is(err, ErrQuotaExceeded):
		return http.StatusTooManyRequests, codeQuota
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests, codeQueueFull
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, codeDraining
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound, codeNotFound
	case errors.Is(err, ErrBadRequest),
		errors.Is(err, stil.ErrSyntax),
		errors.Is(err, core.ErrBudgetExceeded),
		errors.Is(err, sched.ErrInfeasible):
		return http.StatusBadRequest, codeBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, codeTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; the status is academic but 499-style
		// codes are non-standard, so report the nearest real one.
		return http.StatusServiceUnavailable, codeCanceled
	}
	return http.StatusInternalServerError, codeInternal
}

// codeSentinel reconstructs the typed sentinel for a wire code (nil for
// codes without one).  The client wraps it around the transported message.
func codeSentinel(code string) error {
	switch code {
	case codeUnauthorized:
		return ErrUnauthorized
	case codeQuota:
		return ErrQuotaExceeded
	case codeQueueFull:
		return ErrQueueFull
	case codeDraining:
		return ErrDraining
	case codeNotFound:
		return ErrNotFound
	case codeBadRequest:
		return ErrBadRequest
	case codeTimeout:
		return context.DeadlineExceeded
	case codeCanceled:
		return context.Canceled
	}
	return nil
}
