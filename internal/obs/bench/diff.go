package bench

import (
	"fmt"
	"io"
	"time"
)

// Op comparison statuses.
const (
	StatusOK            = "ok"
	StatusRegressed     = "regressed"
	StatusImproved      = "improved"
	StatusMissing       = "missing" // op in old file absent from new: a lost benchmark is a failure
	StatusNew           = "new"     // op only in the new file: informational
	StatusCheckMismatch = "check-mismatch"
)

// OpDiff compares one op between two runs.
type OpDiff struct {
	Op       string  `json:"op"`
	Status   string  `json:"status"`
	OldNs    int64   `json:"old_ns,omitempty"`
	NewNs    int64   `json:"new_ns,omitempty"`
	DeltaPct float64 `json:"delta_pct"`
	// Speedup is the old/new wall-time ratio for improved ops (2.0 = twice
	// as fast); zero elsewhere.
	Speedup float64 `json:"speedup,omitempty"`
	// ThresholdPct is the regression threshold this op was judged against —
	// the summary default, or its per-op override.
	ThresholdPct float64 `json:"threshold_pct"`
	// Checks carried along so a check-mismatch is explainable.
	OldCheck string `json:"old_check,omitempty"`
	NewCheck string `json:"new_check,omitempty"`
}

// Summary is a full two-file comparison.
type Summary struct {
	ThresholdPct float64 `json:"threshold_pct"`
	// OpThresholds records the per-op threshold overrides the comparison
	// ran under, so a stored summary is self-describing.
	OpThresholds    map[string]float64 `json:"op_thresholds,omitempty"`
	Ops             []OpDiff           `json:"ops"`
	Regressions     int                `json:"regressions"`
	Improved        int                `json:"improved"`
	Missing         int                `json:"missing"`
	CheckMismatches int                `json:"check_mismatches"`
}

// CompareOptions tunes a comparison.
type CompareOptions struct {
	// ThresholdPct is the default regression threshold in percent of the
	// old wall time.
	ThresholdPct float64
	// OpThresholds overrides the threshold for individual ops by name —
	// e.g. a sub-millisecond op whose scheduler jitter needs more headroom,
	// or a hardened kernel held to a tighter bound than the suite default.
	OpThresholds map[string]float64
}

func (o CompareOptions) thresholdFor(op string) float64 {
	if t, ok := o.OpThresholds[op]; ok {
		return t
	}
	return o.ThresholdPct
}

// Failed reports whether the comparison should fail the build: any
// regression past the threshold, any lost op, any functional-result
// mismatch.
func (s *Summary) Failed() bool {
	return s.Regressions > 0 || s.Missing > 0 || s.CheckMismatches > 0
}

// Compare diffs two runs op by op under a single threshold.  An op
// regresses when its new wall time exceeds the old by more than
// thresholdPct percent; improvements are labelled (with their speedup) but
// never fail.  Old and new files must share a schema (Load already enforces
// the version).
func Compare(old, new *File, thresholdPct float64) *Summary {
	return CompareWith(old, new, CompareOptions{ThresholdPct: thresholdPct})
}

// CompareWith is Compare with per-op threshold overrides.
func CompareWith(old, new *File, opt CompareOptions) *Summary {
	s := &Summary{ThresholdPct: opt.ThresholdPct, OpThresholds: opt.OpThresholds}
	newOps := make(map[string]Op, len(new.Ops))
	for _, op := range new.Ops {
		newOps[op.Op] = op
	}
	seen := make(map[string]bool, len(old.Ops))
	for _, o := range old.Ops {
		seen[o.Op] = true
		n, ok := newOps[o.Op]
		if !ok {
			s.Ops = append(s.Ops, OpDiff{Op: o.Op, Status: StatusMissing, OldNs: o.WallNs})
			s.Missing++
			continue
		}
		d := OpDiff{Op: o.Op, OldNs: o.WallNs, NewNs: n.WallNs,
			ThresholdPct: opt.thresholdFor(o.Op),
			OldCheck:     o.Check, NewCheck: n.Check}
		if o.WallNs > 0 {
			d.DeltaPct = 100 * (float64(n.WallNs) - float64(o.WallNs)) / float64(o.WallNs)
		}
		switch {
		case o.Check != n.Check:
			d.Status = StatusCheckMismatch
			s.CheckMismatches++
		case d.DeltaPct > d.ThresholdPct:
			d.Status = StatusRegressed
			s.Regressions++
		case d.DeltaPct < -d.ThresholdPct:
			d.Status = StatusImproved
			s.Improved++
			if n.WallNs > 0 {
				d.Speedup = float64(o.WallNs) / float64(n.WallNs)
			}
		default:
			d.Status = StatusOK
		}
		s.Ops = append(s.Ops, d)
	}
	for _, n := range new.Ops {
		if !seen[n.Op] {
			s.Ops = append(s.Ops, OpDiff{Op: n.Op, Status: StatusNew, NewNs: n.WallNs})
		}
	}
	return s
}

// Write renders the summary as the human table benchdiff prints.  Improved
// ops carry their speedup factor; ops judged under a per-op threshold
// override show it next to the status.
func (s *Summary) Write(w io.Writer) {
	fmt.Fprintf(w, "%-28s %14s %14s %9s %8s  %s\n", "op", "old", "new", "delta", "speedup", "status")
	for _, d := range s.Ops {
		old, new, delta, speedup := "-", "-", "-", "-"
		if d.OldNs > 0 {
			old = time.Duration(d.OldNs).Round(time.Microsecond).String()
		}
		if d.NewNs > 0 {
			new = time.Duration(d.NewNs).Round(time.Microsecond).String()
		}
		if d.Status != StatusMissing && d.Status != StatusNew {
			delta = fmt.Sprintf("%+.1f%%", d.DeltaPct)
		}
		if d.Speedup > 0 {
			speedup = fmt.Sprintf("%.2fx", d.Speedup)
		}
		status := d.Status
		if _, ok := s.OpThresholds[d.Op]; ok && d.ThresholdPct != 0 {
			status = fmt.Sprintf("%s (±%.0f%%)", d.Status, d.ThresholdPct)
		}
		fmt.Fprintf(w, "%-28s %14s %14s %9s %8s  %s\n", d.Op, old, new, delta, speedup, status)
	}
	fmt.Fprintf(w, "threshold ±%.0f%%: %d regressed, %d improved, %d missing, %d check mismatches\n",
		s.ThresholdPct, s.Regressions, s.Improved, s.Missing, s.CheckMismatches)
}
