package memfault

import (
	"fmt"
	"sort"

	"steac/internal/march"
	"steac/internal/memory"
)

// Detection is the outcome of simulating one fault machine under one March
// algorithm.
type Detection struct {
	Detected bool
	// OpIndex is the position in the access stream where the first
	// mismatch occurred (valid when Detected).
	OpIndex int
	// Access is the detecting read.
	Access march.Access
	// Expected and Got are the full data words compared.
	Expected, Got uint64
}

// Options tunes the simulation.
type Options struct {
	// Background is the data word written for March value 0; value 1
	// writes its complement.  The zero value (all-zeros background) is the
	// classical solid background.
	Background uint64
	// Backgrounds, when non-empty, runs the algorithm once per background
	// (each run on a fresh fault machine, like a BIST background loop) and
	// reports a detection if any run detects.  It overrides Background.
	Backgrounds []uint64
	// PauseBefore lists March element indices preceded by a retention
	// pause (the Del of a retention test); data-retention faults decay
	// during each pause.
	PauseBefore []int
}

// Simulate runs alg against a single-fault (or multi-fault) machine on a
// memory of the given configuration and reports whether any read
// mismatches the fault-free reference.
func Simulate(alg march.Algorithm, cfg memory.Config, faults []Fault, opt Options) (Detection, error) {
	if err := alg.Validate(); err != nil {
		return Detection{}, err
	}
	if len(opt.Backgrounds) > 0 {
		for _, bg := range opt.Backgrounds {
			det, err := Simulate(alg, cfg, faults,
				Options{Background: bg, PauseBefore: opt.PauseBefore})
			if err != nil {
				return Detection{}, err
			}
			if det.Detected {
				return det, nil
			}
		}
		return Detection{}, nil
	}
	faulty, err := NewFaulty(cfg, faults)
	if err != nil {
		return Detection{}, err
	}
	golden, err := memory.New(cfg)
	if err != nil {
		return Detection{}, err
	}
	bg := opt.Background & cfg.Mask()
	dataFor := func(v int) uint64 {
		if v == 0 {
			return bg
		}
		return ^bg & cfg.Mask()
	}
	pauseBefore := make(map[int]bool, len(opt.PauseBefore))
	for _, e := range opt.PauseBefore {
		pauseBefore[e] = true
	}
	var det Detection
	idx := 0
	lastElem := -1
	alg.Walk(cfg.Words, func(acc march.Access) bool {
		if acc.Elem != lastElem {
			lastElem = acc.Elem
			if pauseBefore[acc.Elem] {
				faulty.Pause() // the golden memory has nothing to decay
			}
		}
		if acc.Op.Read {
			want := golden.Read(acc.Addr)
			got := faulty.Read(acc.Addr)
			if want != got {
				det = Detection{Detected: true, OpIndex: idx, Access: acc, Expected: want, Got: got}
				return false
			}
		} else {
			d := dataFor(acc.Op.Value)
			golden.Write(acc.Addr, d)
			faulty.Write(acc.Addr, d)
		}
		idx++
		return true
	})
	return det, nil
}

// ClassCoverage is the detected/total ratio for one fault class.
type ClassCoverage struct {
	Class    string
	Total    int
	Detected int
}

// Percent returns the coverage percentage (100 for an empty class).
func (c ClassCoverage) Percent() float64 {
	if c.Total == 0 {
		return 100
	}
	return 100 * float64(c.Detected) / float64(c.Total)
}

// Campaign is the result of simulating a list of single faults.
type Campaign struct {
	Algorithm string
	Total     int
	Detected  int
	ByClass   []ClassCoverage
	// Undetected lists the surviving faults (capped at 32 for reports).
	Undetected []Fault
}

// Percent returns the overall fault coverage percentage.
func (c Campaign) Percent() float64 {
	if c.Total == 0 {
		return 100
	}
	return 100 * float64(c.Detected) / float64(c.Total)
}

// Coverage simulates each fault in isolation (single-fault assumption) and
// aggregates coverage per fault class.
func Coverage(alg march.Algorithm, cfg memory.Config, faults []Fault, opt Options) (Campaign, error) {
	camp := Campaign{Algorithm: alg.Name}
	byClass := make(map[string]*ClassCoverage)
	for _, f := range faults {
		det, err := Simulate(alg, cfg, []Fault{f}, opt)
		if err != nil {
			return Campaign{}, fmt.Errorf("memfault: simulating %s: %w", f, err)
		}
		camp.Total++
		cc := byClass[f.Kind.Class()]
		if cc == nil {
			cc = &ClassCoverage{Class: f.Kind.Class()}
			byClass[f.Kind.Class()] = cc
		}
		cc.Total++
		if det.Detected {
			camp.Detected++
			cc.Detected++
		} else if len(camp.Undetected) < 32 {
			camp.Undetected = append(camp.Undetected, f)
		}
	}
	classes := make([]string, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		camp.ByClass = append(camp.ByClass, *byClass[c])
	}
	return camp, nil
}

// ClassPercent returns the coverage of one class in a campaign, or -1 if the
// class was not exercised.
func (c Campaign) ClassPercent(class string) float64 {
	for _, cc := range c.ByClass {
		if cc.Class == class {
			return cc.Percent()
		}
	}
	return -1
}
