package fabric

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// shardState is the lease state machine: every shard is pending, leased,
// or complete.  pending → leased on Claim; leased → pending on TTL expiry
// (steal-on-expiry); leased → complete on Complete; complete is terminal.
type shardState uint8

const (
	shardPending shardState = iota
	shardLeased
	shardComplete
)

type tableShard struct {
	state   shardState
	node    string    // current lessee (leased) or completing node (complete)
	expires time.Time // lease deadline (leased only)
	prev    string    // previous lessee, set when a lease is reclaimed
}

// nodeStats is the per-node ledger behind fabric-wide progress reporting.
type nodeStats struct {
	leased    int // shards currently on lease to the node
	completed int // shards the node completed (first to report)
	stolen    int // shards the node claimed after another node's lease expired
	lastSeen  time.Time
}

// Table is the coordinator's lease table for one campaign.  It is an
// in-memory scheduling structure only — durability lives in the journal
// files — so the coordinator can rebuild it from disk at any time
// (MarkComplete) and downgrade optimistic completions that turn out not to
// be journaled (ResetPending).
//
// Scheduling mirrors the in-process pool: a claim hands out the oldest
// pending shards first (FIFO), and expired leases are re-queued at the
// front ordered by expiry, so the longest-dead work is stolen first —
// thief-FIFO — while a live node keeps extending its own contiguous block
// of claims, the owner-LIFO side.
type Table struct {
	mu       sync.Mutex
	ttl      time.Duration
	now      func() time.Time
	shards   []tableShard
	pending  []int // claim order, oldest first
	complete int
	nodes    map[string]*nodeStats
}

// NewTable builds a lease table over shards shards with the given lease
// TTL.  now supplies the clock; nil means time.Now.  All shards start
// pending in index order.
func NewTable(shards int, ttl time.Duration, now func() time.Time) *Table {
	if now == nil {
		now = time.Now
	}
	t := &Table{
		ttl:     ttl,
		now:     now,
		shards:  make([]tableShard, shards),
		pending: make([]int, shards),
		nodes:   map[string]*nodeStats{},
	}
	for i := range t.pending {
		t.pending[i] = i
	}
	return t
}

func (t *Table) node(name string) *nodeStats {
	ns := t.nodes[name]
	if ns == nil {
		ns = &nodeStats{}
		t.nodes[name] = ns
	}
	return ns
}

// reclaimExpired moves every expired lease back to the front of the
// pending queue, ordered by expiry time (oldest-dead first) then index.
// Callers hold t.mu.
func (t *Table) reclaimExpired(now time.Time) {
	var dead []int
	for i := range t.shards {
		s := &t.shards[i]
		if s.state == shardLeased && now.After(s.expires) {
			dead = append(dead, i)
		}
	}
	if len(dead) == 0 {
		return
	}
	sort.Slice(dead, func(a, b int) bool {
		sa, sb := t.shards[dead[a]], t.shards[dead[b]]
		if !sa.expires.Equal(sb.expires) {
			return sa.expires.Before(sb.expires)
		}
		return dead[a] < dead[b]
	})
	for _, i := range dead {
		s := &t.shards[i]
		s.state = shardPending
		s.prev = s.node
		if ns := t.nodes[s.node]; ns != nil && ns.leased > 0 {
			ns.leased--
		}
		s.node = ""
		obsExpired.Add(1)
	}
	t.pending = append(dead, t.pending...)
}

// Claim leases up to max pending shards to node, reclaiming expired leases
// first.  Returns the claimed shard indices in lease order; empty means no
// work is currently pending (the campaign may still have leased shards in
// flight — poll again).
func (t *Table) Claim(node string, max int) []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	t.reclaimExpired(now)
	ns := t.node(node)
	ns.lastSeen = now
	if max <= 0 {
		max = 1
	}
	var out []int
	for len(out) < max && len(t.pending) > 0 {
		i := t.pending[0]
		t.pending = t.pending[1:]
		s := &t.shards[i]
		if s.state != shardPending {
			continue // stale queue entry (completed while pending)
		}
		s.state = shardLeased
		s.node = node
		s.expires = now.Add(t.ttl)
		ns.leased++
		if s.prev != "" && s.prev != node {
			ns.stolen++
			obsStolen.Add(1)
		}
		out = append(out, i)
	}
	obsLeases.Add(int64(len(out)))
	return out
}

// Heartbeat renews node's leases on the given shards.  A lease is renewed
// if the node still owns it — including one that has expired but not yet
// been reclaimed by a Claim (the node was merely slow, and nobody else has
// the shard).  Shards the node no longer owns are returned in lost; the
// node must abandon them.
func (t *Table) Heartbeat(node string, shards []int) (renewed, lost []int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	t.node(node).lastSeen = now
	obsHeartbeats.Add(1)
	for _, i := range shards {
		if i < 0 || i >= len(t.shards) {
			lost = append(lost, i)
			continue
		}
		s := &t.shards[i]
		if s.state == shardLeased && s.node == node {
			s.expires = now.Add(t.ttl)
			renewed = append(renewed, i)
		} else {
			lost = append(lost, i)
		}
	}
	return renewed, lost
}

// Complete records shard idx as done, reported by node.  Completion is
// idempotent and accepted from any node — a thief and the original owner
// may both finish a shard; outcomes are deterministic, so both are right
// and the first report wins (already=true for the rest).
func (t *Table) Complete(node string, idx int) (already bool, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if idx < 0 || idx >= len(t.shards) {
		return false, fmt.Errorf("%w: %d of %d", ErrUnknownShard, idx, len(t.shards))
	}
	now := t.now()
	ns := t.node(node)
	ns.lastSeen = now
	s := &t.shards[idx]
	if s.state == shardComplete {
		return true, nil
	}
	if s.state == shardLeased {
		if owner := t.nodes[s.node]; owner != nil && owner.leased > 0 {
			owner.leased--
		}
	} else {
		// Completed straight from pending (a node finished after its
		// lease was reclaimed): drop the stale queue entry.
		for i, p := range t.pending {
			if p == idx {
				t.pending = append(t.pending[:i], t.pending[i+1:]...)
				break
			}
		}
	}
	s.state = shardComplete
	s.node = node
	ns.completed++
	t.complete++
	obsCompleted.Add(1)
	return false, nil
}

// MarkComplete records shard idx as already complete during journal
// recovery, crediting no node.  Unknown indices are ignored.
func (t *Table) MarkComplete(idx int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if idx < 0 || idx >= len(t.shards) {
		return
	}
	s := &t.shards[idx]
	if s.state == shardComplete {
		return
	}
	if s.state == shardPending {
		for i, p := range t.pending {
			if p == idx {
				t.pending = append(t.pending[:i], t.pending[i+1:]...)
				break
			}
		}
	}
	s.state = shardComplete
	t.complete++
}

// ResetPending returns the given completed shards to the pending queue —
// the merge found them claimed complete but absent from the journals, so
// they must run again.
func (t *Table) ResetPending(idxs []int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, idx := range idxs {
		if idx < 0 || idx >= len(t.shards) {
			continue
		}
		s := &t.shards[idx]
		if s.state != shardComplete {
			continue
		}
		s.state = shardPending
		s.node = ""
		t.complete--
		t.pending = append(t.pending, idx)
	}
}

// Done reports whether every shard is complete.
func (t *Table) Done() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.complete == len(t.shards)
}

// TableSnapshot is a point-in-time view of the lease table for progress
// reporting.
type TableSnapshot struct {
	Shards   int
	Pending  int
	Leased   int
	Complete int
	Nodes    map[string]NodeProgress
}

// Snapshot returns the current table state.  Expired-but-unreclaimed
// leases count as leased; they only move on the next Claim.
func (t *Table) Snapshot() TableSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := TableSnapshot{Shards: len(t.shards), Nodes: map[string]NodeProgress{}}
	for i := range t.shards {
		switch t.shards[i].state {
		case shardPending:
			snap.Pending++
		case shardLeased:
			snap.Leased++
		case shardComplete:
			snap.Complete++
		}
	}
	now := t.now()
	for name, ns := range t.nodes {
		snap.Nodes[name] = NodeProgress{
			Node: name, Leased: ns.leased, Completed: ns.completed,
			Stolen: ns.stolen, IdleMS: now.Sub(ns.lastSeen).Milliseconds(),
		}
	}
	return snap
}
