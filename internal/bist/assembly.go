package bist

import (
	"fmt"

	"steac/internal/march"
	"steac/internal/memory"
	"steac/internal/netlist"
)

// GroupSpec describes one sequencer group for netlist generation (the
// structural mirror of Group, without live RAM instances).
type GroupSpec struct {
	Name string
	Alg  march.Algorithm
	Mems []memory.Config
	// Backgrounds lists the data backgrounds the group is tested with
	// (empty means one solid-background pass).
	Backgrounds []uint64
	// PauseBefore / PauseCycles configure retention-test pauses.
	PauseBefore []int
	PauseCycles int
	// TestPortB appends the port-B verification pass for two-port macros.
	TestPortB bool
}

// AreaReport itemizes the NAND2-equivalent cost of a generated BIST design.
type AreaReport struct {
	Controller float64
	Sequencers float64
	TPGs       float64
}

// Total returns the total BIST logic area.
func (a AreaReport) Total() float64 { return a.Controller + a.Sequencers + a.TPGs }

// GenerateRAMModule declares a behavioural SRAM macro module with the port
// list the TPG drives.  Macro area is not NAND2 logic; the module carries a
// conventional bitcell-equivalent figure (bits/4) that reports exclude from
// logic-overhead percentages.
func GenerateRAMModule(d *netlist.Design, cfg memory.Config) (*netlist.Module, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := netlist.NewModule("ram_" + cfg.Name)
	m.Behavioral = true
	m.AreaOverride = float64(cfg.BitCount()) / 4
	m.Attrs["macro"] = "sram"
	m.Attrs["geometry"] = cfg.String()
	m.MustPort("CK", netlist.In, 1)
	m.MustPort("ADDR", netlist.In, cfg.AddrBits())
	m.MustPort("D", netlist.In, cfg.Bits)
	m.MustPort("WE", netlist.In, 1)
	m.MustPort("Q", netlist.Out, cfg.Bits)
	if cfg.Kind == memory.TwoPort {
		m.MustPort("ADDRB", netlist.In, cfg.AddrBits())
		m.MustPort("QB", netlist.Out, cfg.Bits)
	}
	if err := d.AddModule(m); err != nil {
		return nil, err
	}
	return m, nil
}

// GenerateBIST assembles the full Fig. 2 BIST subsystem into design d: the
// shared controller, one sequencer per group, one TPG per memory, and the
// behavioural RAM macros, all stitched in a module named topName.  It
// returns the top module and the area report.
func GenerateBIST(d *netlist.Design, topName string, groups []GroupSpec) (*netlist.Module, AreaReport, error) {
	var report AreaReport
	if len(groups) == 0 {
		return nil, report, fmt.Errorf("bist: no groups")
	}
	top := netlist.NewModule(topName)
	for _, p := range []string{PinMBS, PinMBR, PinMBC, PinMSI} {
		top.MustPort(p, netlist.In, 1)
	}
	// MBG selects the data background (0 solid, 1 checkerboard); MPB
	// selects the compared read port of two-port macros.  The tester
	// re-runs the BIST per background / per port.
	top.MustPort("MBG", netlist.In, 1)
	top.MustPort("MPB", netlist.In, 1)
	for _, p := range []string{PinMSO, PinMBO, PinMRD} {
		top.MustPort(p, netlist.Out, 1)
	}

	ctlName := topName + "_ctl"
	if _, err := GenerateController(d, ctlName, len(groups)); err != nil {
		return nil, report, err
	}
	a, err := d.Area(ctlName)
	if err != nil {
		return nil, report, err
	}
	report.Controller = a

	ctlConns := map[string]string{
		PinMBS: PinMBS, PinMBR: PinMBR, PinMBC: PinMBC, PinMSI: PinMSI,
		PinMSO: PinMSO, PinMBO: PinMBO, PinMRD: PinMRD,
	}
	for gi := range groups {
		ctlConns[netlist.BitName("GDONE", gi, len(groups))] = fmt.Sprintf("gdone%d", gi)
		ctlConns[netlist.BitName("GFAIL", gi, len(groups))] = fmt.Sprintf("gfail%d", gi)
		ctlConns[netlist.BitName("GO", gi, len(groups))] = fmt.Sprintf("go%d", gi)
	}
	top.MustInstance("u_ctl", ctlName, ctlConns)

	for gi, g := range groups {
		if len(g.Mems) == 0 {
			return nil, report, fmt.Errorf("bist: group %s has no memories", g.Name)
		}
		seqName := fmt.Sprintf("%s_seq_%s", topName, g.Name)
		if _, err := GenerateSequencer(d, seqName, g.Alg); err != nil {
			return nil, report, err
		}
		sa, err := d.Area(seqName)
		if err != nil {
			return nil, report, err
		}
		report.Sequencers += sa

		pfx := fmt.Sprintf("g%d_", gi)
		top.MustInstance("u_seq"+g.Name, seqName, map[string]string{
			"CK": PinMBC, "RST": PinMBR, "EN": fmt.Sprintf("go%d", gi),
			"ELEMDONE": pfx + "elemdone",
			"CMDR":     pfx + "cmdr", "CMDD": pfx + "cmdd", "DIR": pfx + "dir",
			"ADV": pfx + "adv", "DONE": fmt.Sprintf("gdone%d", gi), "RUN": pfx + "run",
		})
		// TPG enable = GO AND RUN (no spurious access after the last element).
		top.MustInstance(pfx+"engate", netlist.CellAnd2,
			map[string]string{"A": fmt.Sprintf("go%d", gi), "B": pfx + "run", "Z": pfx + "en"})

		var elemDones, fails []string
		for mi, cfg := range g.Mems {
			if _, err := GenerateRAMModule(d, cfg); err != nil {
				return nil, report, err
			}
			tpgName := fmt.Sprintf("%s_tpg_%s", topName, cfg.Name)
			if _, err := GenerateTPG(d, tpgName, cfg); err != nil {
				return nil, report, err
			}
			ta, err := d.Area(tpgName)
			if err != nil {
				return nil, report, err
			}
			report.TPGs += ta

			mp := fmt.Sprintf("%sm%d_", pfx, mi)
			tpgConns := map[string]string{
				"CK": PinMBC, "RST": PinMBR, "EN": pfx + "en", "ADV": pfx + "adv",
				"CMDR": pfx + "cmdr", "CMDD": pfx + "cmdd", "DIR": pfx + "dir",
				"BGSEL": "MBG",
				"WE":    mp + "we", "ELEMDONE": mp + "elemdone", "FAIL": mp + "fail",
			}
			ramConns := map[string]string{"CK": PinMBC, "WE": mp + "we"}
			for b := 0; b < cfg.AddrBits(); b++ {
				n := fmt.Sprintf("%saddr%d", mp, b)
				tpgConns[netlist.BitName("ADDR", b, cfg.AddrBits())] = n
				ramConns[netlist.BitName("ADDR", b, cfg.AddrBits())] = n
				if cfg.Kind == memory.TwoPort {
					ramConns[netlist.BitName("ADDRB", b, cfg.AddrBits())] = n
				}
			}
			for b := 0; b < cfg.Bits; b++ {
				dn := fmt.Sprintf("%sd%d", mp, b)
				qn := fmt.Sprintf("%sq%d", mp, b)
				tpgConns[netlist.BitName("D", b, cfg.Bits)] = dn
				tpgConns[netlist.BitName("Q", b, cfg.Bits)] = qn
				ramConns[netlist.BitName("D", b, cfg.Bits)] = dn
				ramConns[netlist.BitName("Q", b, cfg.Bits)] = qn
				if cfg.Kind == memory.TwoPort {
					qb := fmt.Sprintf("%sqb%d", mp, b)
					tpgConns[netlist.BitName("QB", b, cfg.Bits)] = qb
					ramConns[netlist.BitName("QB", b, cfg.Bits)] = qb
				}
			}
			if cfg.Kind == memory.TwoPort {
				tpgConns["PBSEL"] = "MPB"
			}
			top.MustInstance("u_tpg_"+cfg.Name, tpgName, tpgConns)
			top.MustInstance("u_ram_"+cfg.Name, "ram_"+cfg.Name, ramConns)
			elemDones = append(elemDones, mp+"elemdone")
			fails = append(fails, mp+"fail")
		}
		if _, err := netlist.AddAndTree(top, pfx+"eda", elemDones, pfx+"elemdone"); err != nil {
			return nil, report, err
		}
		if _, err := netlist.AddOrTree(top, pfx+"flo", fails, fmt.Sprintf("gfail%d", gi)); err != nil {
			return nil, report, err
		}
	}
	if err := d.AddModule(top); err != nil {
		return nil, report, err
	}
	return top, report, nil
}
