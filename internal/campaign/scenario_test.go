package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"steac/internal/memory"
	"steac/internal/scenario"
)

// TestScenarioSpecErrors pins the failure modes of scenario-threaded specs:
// every misuse fails Prepare with a descriptive error instead of silently
// falling back to an inline config or the DSC inventory.
func TestScenarioSpecErrors(t *testing.T) {
	ctx := context.Background()
	cfg := memory.Config{Name: "inline", Words: 16, Bits: 2}
	for name, tc := range map[string]struct {
		spec Spec
		want string
	}{
		"coverage unknown scenario": {
			&CoverageSpec{Scenario: "no-such", Memory: "m"},
			"unknown scenario",
		},
		"coverage config and scenario": {
			&CoverageSpec{Config: cfg, Scenario: "dsc", Memory: "extfifo"},
			"both config",
		},
		"coverage unknown macro": {
			&CoverageSpec{Scenario: "dsc", Memory: "no-such-macro"},
			"has no memory",
		},
		"xcheck memories and memory_names": {
			&XCheckSpec{Campaign: XCheckTPG, Scenario: "dsc",
				Memories: []memory.Config{cfg}, MemoryNames: []string{"extfifo"}},
			"both memories",
		},
		"xcheck unknown macro": {
			&XCheckSpec{Campaign: XCheckTPG, Scenario: "dsc",
				MemoryNames: []string{"no-such-macro"}},
			"has no memory",
		},
		"xcheck unknown core": {
			&XCheckSpec{Campaign: XCheckWrapper, Scenario: "dsc",
				Core: "no-such-core", TamWidth: 2},
			"has no core",
		},
	} {
		if _, err := tc.spec.Prepare(ctx); err == nil {
			t.Errorf("%s: Prepare succeeded, want error containing %q", name, tc.want)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Prepare error %q, want substring %q", name, err, tc.want)
		}
	}

	// The unknown-scenario case must keep the registry's typed sentinel so
	// callers (the daemon) can map it to a client error.
	_, err := (&CoverageSpec{Scenario: "no-such", Memory: "m"}).Prepare(ctx)
	if !errors.Is(err, scenario.ErrUnknownScenario) {
		t.Errorf("unknown scenario error %v does not wrap scenario.ErrUnknownScenario", err)
	}
}

// TestScenarioSpecDefaultAlgorithm checks that a coverage spec with an empty
// algorithm inherits the chip's BIST plan: the report is byte-identical to
// one that names the algorithm explicitly, while the fingerprints stay
// distinct (the spec payloads differ, so their checkpoints must not mix).
func TestScenarioSpecDefaultAlgorithm(t *testing.T) {
	ctx := context.Background()
	chip, err := scenario.GenerateByName("dsc", 0)
	if err != nil {
		t.Fatal(err)
	}
	mem := chip.SmallestMemories(1)[0].Name

	inherit := &CoverageSpec{Scenario: "dsc", Memory: mem, AllFaults: true}
	explicit := &CoverageSpec{Scenario: "dsc", Memory: mem, AllFaults: true,
		Algorithm: chipAlgorithm(chip)}

	a, err := Run(ctx, inherit, Options{Workers: 2})
	if err != nil {
		t.Fatalf("inherited-algorithm campaign: %v", err)
	}
	b, err := Run(ctx, explicit, Options{Workers: 2})
	if err != nil {
		t.Fatalf("explicit-algorithm campaign: %v", err)
	}
	aj, _ := json.Marshal(a.Report)
	bj, _ := json.Marshal(b.Report)
	if string(aj) != string(bj) {
		t.Errorf("inherited algorithm report differs from explicit %q:\n got  %s\n want %s",
			chipAlgorithm(chip), aj, bj)
	}
	if a.Fingerprint == b.Fingerprint {
		t.Error("specs with different payloads share a fingerprint")
	}
}
