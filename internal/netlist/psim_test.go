package netlist

import (
	"fmt"
	"math/rand"
	"testing"
)

// comparePackedLane checks one packed lane against a scalar CompiledSim on
// every observable net.
func comparePackedLane(t *testing.T, step string, lane int, nets []string, ids []int,
	ps *PackedSim, ref *CompiledSim) {
	t.Helper()
	for i, n := range nets {
		if got, want := ps.GetLaneID(ids[i], lane), ref.Get(n); got != want {
			t.Fatalf("%s: lane %d net %s: packed=%v scalar=%v", step, lane, n, got, want)
		}
	}
}

// runPackedVsScalar drives a PackedSim carrying faults (lane i = faults[i],
// lane 63 fault-free) in lockstep with one scalar CompiledSim per lane,
// comparing every observable net after every Settle and Tick, and checks
// the packed detection verdict (first cycle with (word ^ golden-broadcast)
// != 0 on an observable) equals the scalar one per fault.
func runPackedVsScalar(t *testing.T, d *Design, top string, ins, clocks, obsNets []string,
	faults []SAFault, seed int64, cycles int) {
	t.Helper()
	if len(faults) > Lanes-1 {
		t.Fatalf("at most %d faults per packed pass, got %d", Lanes-1, len(faults))
	}
	base, err := NewCompiledSim(d, top)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := NewPackedSim(base)
	if err != nil {
		t.Fatal(err)
	}
	// One scalar machine per lane: faulty clones for lanes 0..n-1, the
	// fault-free base standing in for every remaining lane (an uninjected
	// packed lane must behave exactly like the golden machine).
	scalars := make([]*CompiledSim, len(faults))
	for i, f := range faults {
		c := base.Clone()
		if err := c.Inject(f.Gate, f.Port, f.Value); err != nil {
			t.Fatalf("scalar inject %v: %v", f, err)
		}
		if perr := ps.InjectLane(i, f.Gate, f.Port, f.Value); perr != nil {
			t.Fatalf("packed inject %v: %v", f, perr)
		}
		scalars[i] = c
	}
	ids := make([]int, len(obsNets))
	for i, n := range obsNets {
		ids[i] = ps.NetID(n)
		if ids[i] < 0 {
			t.Fatalf("unknown observable net %s", n)
		}
	}
	firstDivPacked := make([]int, len(faults))
	firstDivScalar := make([]int, len(faults))
	for i := range firstDivPacked {
		firstDivPacked[i], firstDivScalar[i] = -1, -1
	}
	rng := rand.New(rand.NewSource(seed))
	step := 0
	observe := func(label string) {
		t.Helper()
		for lane, ref := range scalars {
			comparePackedLane(t, label, lane, obsNets, ids, ps, ref)
		}
		comparePackedLane(t, label, Lanes-1, obsNets, ids, ps, base)
		// Detection verdicts: packed word-vs-golden diff against per-lane
		// scalar miscompare, at the same step index.
		for i, id := range ids {
			w := ps.GetWordID(id)
			golden := uint64(0)
			if w>>(Lanes-1)&1 == 1 {
				golden = ^uint64(0)
			}
			diff := w ^ golden
			for lane := range scalars {
				if diff>>uint(lane)&1 == 1 && firstDivPacked[lane] < 0 {
					firstDivPacked[lane] = step
				}
				if scalars[lane].Get(obsNets[i]) != base.Get(obsNets[i]) && firstDivScalar[lane] < 0 {
					firstDivScalar[lane] = step
				}
			}
		}
		step++
	}
	for cyc := 0; cyc < cycles; cyc++ {
		for _, in := range ins {
			v := rng.Intn(2) == 1
			ps.Set(in, v)
			base.Set(in, v)
			for _, c := range scalars {
				c.Set(in, v)
			}
		}
		ps.Settle()
		base.Settle()
		for _, c := range scalars {
			c.Settle()
		}
		observe(fmt.Sprintf("cycle %d settle", cyc))
		clk := clocks[rng.Intn(len(clocks))]
		ps.Tick(clk)
		base.Tick(clk)
		for _, c := range scalars {
			c.Tick(clk)
		}
		observe(fmt.Sprintf("cycle %d tick %s", cyc, clk))
	}
	for lane := range scalars {
		if firstDivPacked[lane] != firstDivScalar[lane] {
			t.Fatalf("fault %v: packed first divergence %d, scalar %d",
				faults[lane], firstDivPacked[lane], firstDivScalar[lane])
		}
	}
}

// TestPackedSimMatchesScalar packs random fault subsets of the full
// testbed (every library cell, gated clock, latch, hierarchy) and checks
// every lane against its scalar CompiledSim twin, including the golden
// lane and the detection-verdict convention.
func TestPackedSimMatchesScalar(t *testing.T) {
	d := buildSimTestbed(t)
	probe, err := NewCompiledSim(d, "dut")
	if err != nil {
		t.Fatal(err)
	}
	sites := probe.Faults()
	ins := []string{"rst", "en", "a", "b", "s"}
	clocks := []string{"ck", "ck2", "en"}
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		// Vary the lane count to cover the <63-fault remainder path and a
		// full word.
		n := []int{1, 5, 17, 40, 63, 63}[trial]
		if n > len(sites) {
			n = len(sites)
		}
		faults := make([]SAFault, 0, n)
		for _, i := range rng.Perm(len(sites))[:n] {
			faults = append(faults, sites[i])
		}
		runPackedVsScalar(t, d, "dut", ins, clocks, tbOutputs, faults, int64(trial), 50)
	}
}

// randomPackedDesign generates a random acyclic netlist: a gated clock, a
// mix of every library cell, inputs drawn only from earlier nets (no comb
// loops).  Returns the design plus its input, clock and observable nets.
func randomPackedDesign(rng *rand.Rand, nGates int) (*Design, []string, []string, []string) {
	d := NewDesign("rnd", DefaultLibrary())
	m := NewModule("dut")
	ins := []string{"i0", "i1", "i2", "i3"}
	for _, p := range append([]string{"ck", "ck2"}, ins...) {
		m.MustPort(p, In, 1)
	}
	nets := append([]string{}, ins...)
	pick := func() string { return nets[rng.Intn(len(nets))] }
	// A gated clock keeps the generic Tick path exercised.
	m.MustInstance("u_gck", CellAnd2, map[string]string{"A": "ck2", "B": "i0", "Z": "gck"})
	clocks := []string{"ck", "gck"}
	var obsNets []string
	for gi := 0; gi < nGates; gi++ {
		z := fmt.Sprintf("z%d", gi)
		name := fmt.Sprintf("u_g%d", gi)
		switch rng.Intn(12) {
		case 0:
			m.MustInstance(name, CellInv, map[string]string{"A": pick(), "Z": z})
		case 1:
			m.MustInstance(name, CellBuf, map[string]string{"A": pick(), "Z": z})
		case 2:
			m.MustInstance(name, CellNand2, map[string]string{"A": pick(), "B": pick(), "Z": z})
		case 3:
			m.MustInstance(name, CellNor2, map[string]string{"A": pick(), "B": pick(), "Z": z})
		case 4:
			m.MustInstance(name, CellAnd2, map[string]string{"A": pick(), "B": pick(), "Z": z})
		case 5:
			m.MustInstance(name, CellOr2, map[string]string{"A": pick(), "B": pick(), "Z": z})
		case 6:
			m.MustInstance(name, CellXor2, map[string]string{"A": pick(), "B": pick(), "Z": z})
		case 7:
			m.MustInstance(name, CellMux2, map[string]string{"A": pick(), "B": pick(), "S": pick(), "Z": z})
		case 8:
			m.MustInstance(name, CellDFF, map[string]string{"D": pick(), "CK": clocks[rng.Intn(2)], "Q": z})
		case 9:
			m.MustInstance(name, CellSDFF,
				map[string]string{"D": pick(), "SI": pick(), "SE": pick(), "CK": clocks[rng.Intn(2)], "Q": z})
		case 10:
			m.MustInstance(name, CellDFFR, map[string]string{"D": pick(), "CK": clocks[rng.Intn(2)], "R": pick(), "Q": z})
		case 11:
			m.MustInstance(name, CellLatchL, map[string]string{"D": pick(), "EN": pick(), "Q": z})
		}
		nets = append(nets, z)
		obsNets = append(obsNets, z)
	}
	d.MustAddModule(m)
	d.Top = "dut"
	return d, ins, clocks, obsNets
}

// packedVsScalarProperty is one property-check round for a seed: random
// netlist, random fault subset, random stimulus, bit-identical lanes and
// detection verdicts.
func packedVsScalarProperty(t *testing.T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d, ins, clocks, obsNets := randomPackedDesign(rng, 6+rng.Intn(30))
	probe, err := NewCompiledSim(d, "dut")
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	sites := probe.Faults()
	n := 1 + rng.Intn(Lanes-1)
	if n > len(sites) {
		n = len(sites)
	}
	faults := make([]SAFault, 0, n)
	for _, i := range rng.Perm(len(sites))[:n] {
		faults = append(faults, sites[i])
	}
	runPackedVsScalar(t, d, "dut", ins, clocks, obsNets, faults, seed^0x5a5a, 30)
}

// TestPackedSimRandomNetlistsProperty sweeps many random netlists.
func TestPackedSimRandomNetlistsProperty(t *testing.T) {
	rounds := 24
	if testing.Short() {
		rounds = 6
	}
	for seed := int64(0); seed < int64(rounds); seed++ {
		packedVsScalarProperty(t, seed)
	}
}

// FuzzPackedVsScalar lets the fuzzer hunt for a seed where a packed lane
// diverges from its scalar twin.
func FuzzPackedVsScalar(f *testing.F) {
	for _, s := range []int64{1, 42, 12345} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		packedVsScalarProperty(t, seed)
	})
}

// TestPackedSimInjectErrors checks packed injection rejects exactly what
// the scalar engine rejects.
func TestPackedSimInjectErrors(t *testing.T) {
	d := buildSimTestbed(t)
	base, err := NewCompiledSim(d, "dut")
	if err != nil {
		t.Fatal(err)
	}
	ps, err := NewPackedSim(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.InjectLane(0, "no_such_gate", "A", true); err == nil {
		t.Fatal("expected unknown-gate error")
	}
	if err := ps.InjectLane(0, "u_inv", "XYZ", true); err == nil {
		t.Fatal("expected unknown-port error")
	}
	if err := ps.InjectLane(Lanes, "u_inv", "A", true); err == nil {
		t.Fatal("expected lane-range error")
	}
	if err := base.Inject("u_inv", "A", true); err != nil {
		t.Fatal(err)
	}
	if _, err := NewPackedSim(base); err == nil {
		t.Fatal("expected fault-free-base error")
	}
}

// TestPackedSimClearFaultsAndReset proves ClearFaults + Reset restore
// golden behaviour on every lane.
func TestPackedSimClearFaultsAndReset(t *testing.T) {
	d := buildSimTestbed(t)
	base, err := NewCompiledSim(d, "dut")
	if err != nil {
		t.Fatal(err)
	}
	ps, err := NewPackedSim(base)
	if err != nil {
		t.Fatal(err)
	}
	run := func() []uint64 {
		ps.Reset()
		ps.Set("a", true)
		ps.Set("b", true)
		ps.Tick("ck")
		out := make([]uint64, len(tbOutputs))
		for i, o := range tbOutputs {
			out[i] = ps.GetWordID(ps.NetID(o))
		}
		return out
	}
	clean := run()
	for _, w := range clean {
		if w != 0 && w != ^uint64(0) {
			t.Fatalf("fault-free lanes disagree: %#x", w)
		}
	}
	if err := ps.InjectLane(3, "u_nand", "Z", true); err != nil {
		t.Fatal(err)
	}
	faulty := run()
	differs := false
	for i := range clean {
		if faulty[i] != clean[i] {
			differs = true
			if faulty[i]^clean[i] != 1<<3 {
				t.Fatalf("fault leaked outside lane 3 on %s: clean=%#x faulty=%#x",
					tbOutputs[i], clean[i], faulty[i])
			}
		}
	}
	if !differs {
		t.Fatal("u_nand/Z SA1 should be visible on some output")
	}
	ps.ClearFaults()
	restored := run()
	for i := range clean {
		if restored[i] != clean[i] {
			t.Fatalf("ClearFaults did not restore lane behaviour at %s", tbOutputs[i])
		}
	}
}
