package stil

import (
	"errors"
	"testing"
)

// TestSyntaxErrorSentinel locks in the typed-error contract: every parse
// failure matches the ErrSyntax sentinel and carries a position.
func TestSyntaxErrorSentinel(t *testing.T) {
	for name, src := range map[string]string{
		"no header":       `Signals { {* clock *} ck In; }`,
		"unmatched brace": "STIL 1.0; Signals {",
		"stray brace":     "STIL 1.0; }",
		"bad block":       "STIL 1.0; Bogus { }",
		"bad direction":   "STIL 1.0; Signals { x Sideways; }",
		"bad role":        "STIL 1.0; Signals { {* alien *} x In; }",
		"bad rune":        "STIL 1.0; Signals { «",
		"unterminated":    `STIL 1.0; {* never closed`,
	} {
		_, err := Parse(src)
		if err == nil {
			t.Errorf("%s: accepted:\n%s", name, src)
			continue
		}
		if !errors.Is(err, ErrSyntax) {
			t.Errorf("%s: error %v does not match stil.ErrSyntax", name, err)
		}
		var se *SyntaxError
		if !errors.As(err, &se) {
			t.Errorf("%s: error %v is not a *stil.SyntaxError", name, err)
		} else if se.Line < 1 {
			t.Errorf("%s: SyntaxError has no line: %+v", name, se)
		}
	}
}

// TestSyntaxErrorPosition pins the reported line (and column for lexical
// errors) to the offending source location.
func TestSyntaxErrorPosition(t *testing.T) {
	_, err := Parse("STIL 1.0;\nSignals {\n  x Sideways;\n}\n")
	var se *SyntaxError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *SyntaxError", err)
	}
	if se.Line != 3 {
		t.Errorf("bad-direction line = %d, want 3", se.Line)
	}

	_, err = Parse("STIL 1.0;\nSignals { «")
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *SyntaxError", err)
	}
	if se.Line != 2 || se.Col < 10 {
		t.Errorf("bad-rune position = line %d col %d, want line 2 col >= 10", se.Line, se.Col)
	}
}
