package wrapper

import (
	"fmt"

	"steac/internal/testinfo"
)

// Rebalance implements the scheduler feedback loop of paper §2: for a soft
// core, "the Core Test Scheduler will then rebalance scan chains for each
// assigned TAM width; the results can be fed back to the SOC integrator to
// reconfigure the scan chains".  It returns a reconfigured copy of the core
// whose physical scan chains are the balanced segments of the soft plan
// (one chain per TAM wire, lengths within one bit of each other), plus the
// hard wrapper plan for the reconfigured core.
//
// The reconfigured core keeps the original's totals (scan bits, pattern
// counts, IO counts) but its chains — and therefore its scan test time —
// correspond to what the SOC integrator would re-stitch.
func Rebalance(core *testinfo.Core, width int) (*testinfo.Core, Plan, error) {
	if !core.Soft {
		return nil, Plan{}, fmt.Errorf("wrapper: %s is not a soft core", core.Name)
	}
	softPlan, err := DesignChains(core, width, LPT)
	if err != nil {
		return nil, Plan{}, err
	}
	re := &testinfo.Core{
		Name:        core.Name,
		Soft:        true,
		Clocks:      append([]string(nil), core.Clocks...),
		Resets:      append([]string(nil), core.Resets...),
		ScanEnables: append([]string(nil), core.ScanEnables...),
		TestEnables: append([]string(nil), core.TestEnables...),
		PIs:         core.PIs, POs: core.POs,
		Patterns: append([]testinfo.PatternSet(nil), core.Patterns...),
	}
	ck := ""
	if len(core.Clocks) > 0 {
		ck = core.Clocks[0]
	}
	idx := 0
	for _, ch := range softPlan.Chains {
		bits := ch.ScanBits()
		if bits == 0 {
			continue
		}
		re.ScanChains = append(re.ScanChains, testinfo.ScanChain{
			Name:   fmt.Sprintf("rb%d", idx),
			Length: bits,
			In:     fmt.Sprintf("rb_si%d", idx),
			Out:    fmt.Sprintf("rb_so%d", idx),
			Clock:  ck,
		})
		idx++
	}
	if re.TotalScanBits() != core.TotalScanBits() {
		return nil, Plan{}, fmt.Errorf("wrapper: rebalance lost scan bits: %d vs %d",
			re.TotalScanBits(), core.TotalScanBits())
	}
	if err := re.Validate(); err != nil {
		return nil, Plan{}, err
	}
	// The reconfigured chains are physical now: design the hard plan used
	// for wrapper generation and pattern translation.
	hardCopy := *re
	hardCopy.Soft = false
	hardPlan, err := DesignChains(&hardCopy, width, LPT)
	if err != nil {
		return nil, Plan{}, err
	}
	return re, hardPlan, nil
}
