package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"steac/internal/campaign"
	"steac/internal/fabric"
	"steac/internal/memfault"
	"steac/internal/xcheck"
)

// The checkpointable campaign mode:
//
//	dscflow -campaign spec.json -checkpoint DIR   start (or resume) a campaign
//	dscflow -resume DIR                           resume from the manifest alone
//
// A spec file names a campaign kind plus its canonical spec payload:
//
//	{"kind": "memfault",
//	 "spec": {"algorithm": "March C-",
//	          "config": {"Name": "fb0", "Words": 65536, "Bits": 16, "Kind": 0},
//	          "all_faults": true}}
//
// SIGINT/SIGTERM checkpoint gracefully: in-flight shards finish and are
// journaled, then the process exits non-zero; rerunning either command
// picks up exactly where it stopped and prints a report bit-identical to
// an uninterrupted run.

// specFile is the on-disk shape of a -campaign argument.
type specFile struct {
	Kind string          `json:"kind"`
	Spec json.RawMessage `json:"spec"`
}

// runCampaignCLI dispatches the -campaign / -resume modes.
func runCampaignCLI(specPath, resumeDir, checkpointDir string, shardSize, workers int, reportOut string) error {
	var (
		spec campaign.Spec
		dir  = checkpointDir
		err  error
	)
	switch {
	case specPath != "" && resumeDir != "":
		return fmt.Errorf("-campaign and -resume are mutually exclusive")
	case specPath != "":
		raw, rerr := os.ReadFile(specPath)
		if rerr != nil {
			return rerr
		}
		var sf specFile
		if err := json.Unmarshal(raw, &sf); err != nil {
			return fmt.Errorf("parse %s: %w", specPath, err)
		}
		spec, err = campaign.Decode(sf.Kind, sf.Spec)
	case resumeDir != "":
		// The checkpoint directory is self-describing: kind and spec come
		// from the manifest.
		dir = resumeDir
		spec, err = campaign.LoadSpec(resumeDir)
	}
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	res, err := campaign.Run(ctx, spec, campaign.Options{
		Workers:   workers,
		ShardSize: shardSize,
		Dir:       dir,
		OnShard: func(ev campaign.ShardEvent) {
			if ev.Resumed {
				return
			}
			fmt.Fprintf(os.Stderr, "campaign: shard %d/%d (%d/%d units)\n",
				ev.Done, ev.Total, ev.UnitsDone, ev.UnitsTotal)
		},
	})
	if err != nil {
		if dir != "" && errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "campaign: interrupted; checkpoint saved under %s\n", dir)
		}
		return err
	}

	fmt.Printf("campaign %s: %d shards (%d resumed, %d repaired)\n",
		res.Fingerprint[:12], res.Shards, res.Resumed, res.Repaired)
	if reportOut != "" {
		raw, err := json.Marshal(res.Report)
		if err != nil {
			return fmt.Errorf("marshal report: %w", err)
		}
		if err := os.WriteFile(reportOut, raw, 0o644); err != nil {
			return err
		}
	}
	printCampaignReport(res.Report)
	return nil
}

// runFabricCLI submits a campaign spec file to a fabric coordinator and
// polls it to completion: the shards run on whatever nodes have joined the
// fabric, this process only watches.  The fetched report is byte-identical
// to a local run of the same spec.
func runFabricCLI(specPath, coordinatorURL string, shardSize int, reportOut string) error {
	if specPath == "" {
		return fmt.Errorf("-fabric requires -campaign (the spec file to submit)")
	}
	raw, err := os.ReadFile(specPath)
	if err != nil {
		return err
	}
	var sf specFile
	if err := json.Unmarshal(raw, &sf); err != nil {
		return fmt.Errorf("parse %s: %w", specPath, err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	client := &fabric.Client{Base: coordinatorURL}
	info, err := client.Submit(ctx, fabric.SubmitRequest{
		Kind: sf.Kind, Spec: sf.Spec, ShardSize: shardSize,
	})
	if err != nil {
		return fmt.Errorf("submit to fabric: %w", err)
	}
	fmt.Fprintf(os.Stderr, "fabric: campaign %s submitted: %d units in %d shards\n",
		info.Fingerprint[:12], info.Units, info.Shards)

	lastComplete := -1
	for info.State != "done" {
		prog, err := client.Progress(ctx, info.Fingerprint)
		if err != nil {
			return fmt.Errorf("fabric progress: %w", err)
		}
		if prog.ShardsComplete != lastComplete {
			lastComplete = prog.ShardsComplete
			fmt.Fprintf(os.Stderr, "fabric: %d/%d shards (%d leased, %d pending)\n",
				prog.ShardsComplete, prog.ShardsTotal, prog.ShardsLeased, prog.ShardsPending)
			for _, node := range prog.Nodes {
				fmt.Fprintf(os.Stderr, "fabric:   node %-20s leased %2d  completed %3d  stolen %d\n",
					node.Node, node.Leased, node.Completed, node.Stolen)
			}
		}
		if prog.State == "done" {
			break
		}
		select {
		case <-ctx.Done():
			fmt.Fprintln(os.Stderr, "fabric: interrupted; the campaign keeps running on its nodes")
			return ctx.Err()
		case <-time.After(500 * time.Millisecond):
		}
	}

	report, err := client.Report(ctx, info.Fingerprint)
	if err != nil {
		return fmt.Errorf("fabric report: %w", err)
	}
	if reportOut != "" {
		if err := os.WriteFile(reportOut, report, 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("campaign %s: %d shards (fabric)\n", info.Fingerprint[:12], info.Shards)
	printFabricReport(sf.Kind, report)
	return nil
}

// printFabricReport decodes the raw report JSON by campaign kind into the
// engine-native type so the human rendering matches local runs.
func printFabricReport(kind string, raw []byte) {
	switch kind {
	case campaign.KindMemfault:
		var rep memfault.Campaign
		if json.Unmarshal(raw, &rep) == nil {
			printCampaignReport(rep)
			return
		}
	case campaign.KindXCheck:
		var rep xcheck.CampaignResult
		if json.Unmarshal(raw, &rep) == nil {
			printCampaignReport(rep)
			return
		}
	}
	fmt.Println(string(raw))
}

// printCampaignReport renders the engine-native report of a finished
// campaign.
func printCampaignReport(report interface{}) {
	switch rep := report.(type) {
	case memfault.Campaign:
		fmt.Printf("%s: %d/%d faults detected (%.2f%%)\n",
			rep.Algorithm, rep.Detected, rep.Total, rep.Percent())
		for _, cc := range rep.ByClass {
			fmt.Printf("  %-5s %4d/%-4d %6.2f%%\n", cc.Class, cc.Detected, cc.Total, cc.Percent())
		}
		if len(rep.Undetected) > 0 {
			fmt.Printf("  undetected (first %d):", len(rep.Undetected))
			for i, f := range rep.Undetected {
				if i == 4 {
					fmt.Print(" ...")
					break
				}
				fmt.Printf(" %s", f)
			}
			fmt.Println()
		}
	case xcheck.CampaignResult:
		fmt.Println(rep.String())
	default:
		blob, _ := json.Marshal(rep)
		fmt.Println(string(blob))
	}
}
