package xcheck

import (
	"context"
	"fmt"

	"steac/internal/netlist"
	"steac/internal/pattern"
	"steac/internal/testinfo"
	"steac/internal/wrapper"
)

// BuildWrapperDesign assembles the full gate-level stack for one wrapped
// core: the structural scan core (pattern.BuildStructuralCore), the
// generated IEEE-1500-style wrapper around it, and an "xtop" shell that
// ties wrck and every core clock to a single "tck" port so one Tick
// advances boundary cells and core flops together (on silicon they are the
// same test clock; the netlist keeps them as separate ports).
func BuildWrapperDesign(core *testinfo.Core, width int, part wrapper.Partitioner) (*netlist.Design, wrapper.Plan, error) {
	d := netlist.NewDesign("xwrap", netlist.DefaultLibrary())
	if _, err := pattern.BuildStructuralCore(d, core); err != nil {
		return nil, wrapper.Plan{}, err
	}
	plan, err := wrapper.DesignChains(core, width, part)
	if err != nil {
		return nil, wrapper.Plan{}, err
	}
	gen, err := wrapper.Generate(d, core, plan)
	if err != nil {
		return nil, wrapper.Plan{}, err
	}

	x := netlist.NewModule("xtop")
	x.MustPort("tck", netlist.In, 1)
	conns := map[string]string{"wrck": "tck"}
	for _, ck := range core.Clocks {
		conns[ck] = "tck"
	}
	addPort := func(name string, dir netlist.PortDir, w int) {
		x.MustPort(name, dir, w)
		for i := 0; i < w; i++ {
			b := netlist.BitName(name, i, w)
			conns[b] = b
		}
	}
	if core.PIs > 0 {
		addPort("pi", netlist.In, core.PIs)
	}
	if core.POs > 0 {
		addPort("po", netlist.Out, core.POs)
	}
	for _, p := range []string{"shift", "update", "mode", "safe", "shiftwir", "updatewir"} {
		addPort(p, netlist.In, 1)
	}
	addPort("wsi", netlist.In, plan.Width)
	addPort("wso", netlist.Out, plan.Width)
	addPort("wirso", netlist.Out, 1)
	for _, pins := range [][]string{core.Resets, core.ScanEnables, core.TestEnables} {
		for _, p := range pins {
			addPort(p, netlist.In, 1)
		}
	}
	x.MustInstance("u_wrap", gen.Module.Name, conns)
	if err := d.AddModule(x); err != nil {
		return nil, wrapper.Plan{}, err
	}
	return d, plan, nil
}

// wrapPins caches compiled net ids for the xtop harness.
type wrapPins struct {
	wsi, wso []int
	wirso    int
}

func newWrapPins(sim *netlist.CompiledSim, width int) wrapPins {
	return wrapPins{
		wsi:   sim.BusIDs("wsi", width),
		wso:   sim.BusIDs("wso", width),
		wirso: sim.NetID("wirso"),
	}
}

// wrapDefaults puts the harness in INTEST posture: functional pins and
// core control pins quiet, MODE on, SAFE off, WIR strobes idle.
func wrapDefaults(sim *netlist.CompiledSim, core *testinfo.Core) {
	sim.Set("mode", true)
	sim.Set("safe", false)
	sim.Set("shift", false)
	sim.Set("update", false)
	sim.Set("shiftwir", false)
	sim.Set("updatewir", false)
	for i := 0; i < core.PIs; i++ {
		sim.SetID(sim.NetID(netlist.BitName("pi", i, core.PIs)), false)
	}
	for _, pins := range [][]string{core.Resets, core.ScanEnables, core.TestEnables} {
		for _, p := range pins {
			sim.Set(p, false)
		}
	}
}

// scanObserver sees every non-X expectation comparison; returning false
// aborts the stream.
type scanObserver func(cycle int, pin string, got, want bool) bool

// streamScan applies one translated scan session to the gate-level stack,
// comparing every non-X wso expectation through obs.  The drive protocol is
// the tester's: shift cycles raise SHIFT/SE and present wsi before the tck
// edge (wso is read pre-shift), capture cycles drop them, pulse UPDATE to
// transfer loaded stimulus onto the core inputs, and clock once.  ctx is
// polled every equivPollCycles streamed cycles; a cancel aborts the stream
// (the caller surfaces ctx.Err()).
func streamScan(ctx context.Context, sim *netlist.CompiledSim, prog *pattern.Program, layout pattern.SessionLayout,
	core *testinfo.Core, pins wrapPins, obs scanObserver) error {
	setSE := func(v bool) {
		sim.Set("shift", v)
		for _, se := range core.ScanEnables {
			sim.Set(se, v)
		}
	}
	pollIn := equivPollCycles
	return prog.Stream(layout, func(c int, cyc *pattern.Cycle) bool {
		if pollIn--; pollIn <= 0 {
			pollIn = equivPollCycles
			if ctx.Err() != nil {
				return false
			}
		}
		switch cyc.Actions[core.Name] {
		case pattern.ActShift:
			setSE(true)
			for i, id := range pins.wsi {
				sim.SetID(id, cyc.TamIn[i] == pattern.B1)
			}
			sim.Settle()
			for i, id := range pins.wso {
				want := cyc.TamExpect[i]
				if want == pattern.BX {
					continue
				}
				if !obs(c, fmt.Sprintf("wso[%d]", i), sim.GetID(id), want == pattern.B1) {
					return false
				}
			}
			sim.Tick("tck")
		case pattern.ActCapture:
			setSE(false)
			sim.Tick("update")
			sim.Tick("tck")
		default:
			sim.Tick("tck")
		}
		return true
	})
}

// wirBypassScript exercises the wrapper instruction register: it programs
// BYPASS, proves the serial path through the one-bit WBY register (one
// cycle in, one cycle out), then reloads INTESTSCAN while checking the old
// instruction echoes out on wirso.  Every comparison goes through obs; the
// returned count is the tck cycles spent.
func wirBypassScript(sim *netlist.CompiledSim, pins wrapPins, obs scanObserver) int {
	cycle := 0
	shiftWIR := func(bits []bool, echo []int) {
		sim.Set("shiftwir", true)
		for k, b := range bits {
			sim.SetID(pins.wsi[0], b)
			sim.Settle()
			if echo != nil && echo[k] >= 0 {
				obs(cycle, "wirso", sim.GetID(pins.wirso), echo[k] == 1)
			}
			sim.Tick("tck")
			cycle++
		}
		sim.Set("shiftwir", false)
		sim.Tick("updatewir")
	}
	// Program BYPASS (code 3): the first bit shifted lands in the unused
	// third stage, the last two become q1=1, q0=1.
	shiftWIR([]bool{false, true, true}, nil)
	// The WBY register must now delay wsi[0] to wso[0] by exactly one cycle.
	for _, b := range []bool{true, false, true, true, false} {
		sim.SetID(pins.wsi[0], b)
		sim.Tick("tck")
		cycle++
		obs(cycle, "wso[0]@bypass", sim.GetID(pins.wso[0]), b)
	}
	// Reload INTESTSCAN (code 0); the old BYPASS bits echo on wirso in
	// shift order: stage-2 first (0), then the two programmed ones.
	shiftWIR([]bool{false, false, false}, []int{0, 1, 1})
	return cycle
}

// VerifyWrapperContext proves a generated wrapper + structural core stack executes
// a complete translated scan program bit-exactly: every non-X TAM
// expectation the pattern translator emits must appear on the wso pins,
// pattern after pattern, plus a WIR excursion showing BYPASS takes over the
// serial path and INTESTSCAN restores it.
//
// The scan stream polls ctx every equivPollCycles cycles, and a canceled check returns
// ctx.Err() wrapped with the stage name.
func VerifyWrapperContext(ctx context.Context, name string, core *testinfo.Core, width int, opts Options) (EquivResult, *pattern.ATPG, error) {
	tm := obsSpanVerify.Start()
	defer tm.Stop()
	res := EquivResult{Name: name}
	d, plan, err := BuildWrapperDesign(core, width, wrapper.LPT)
	if err != nil {
		return res, nil, err
	}
	sim, err := netlist.NewCompiledSim(d, "xtop")
	if err != nil {
		return res, nil, err
	}
	res.Gates = sim.GateCount()
	atpg, err := pattern.NewATPG(core)
	if err != nil {
		return res, nil, err
	}
	pins := newWrapPins(sim, plan.Width)
	mmCap := opts.maxMismatches()
	obs := func(cycle int, pin string, got, want bool) bool {
		res.check(cycle, pin, got, want, mmCap)
		return len(res.Mismatches) < mmCap
	}

	sim.Reset()
	wrapDefaults(sim, core)

	// Session 1: WIR programming and bypass.
	res.Sessions++
	res.Cycles += wirBypassScript(sim, pins, obs)

	// Session 2: the full translated scan program (the WIR is back in
	// INTESTSCAN; the first pattern load initializes every chain flop, so
	// the bypass excursion leaves no residue).
	res.Sessions++
	lane := pattern.ScanLane{
		Core: core, Source: atpg, Plan: plan,
		Cycles: plan.ScanTestCycles(atpg.ScanCount()),
	}
	layout := pattern.SessionLayout{Cycles: lane.Cycles, Scan: []pattern.ScanLane{lane}}
	prog := &pattern.Program{TamWidth: plan.Width}
	if err := streamScan(ctx, sim, prog, layout, core, pins, obs); err != nil {
		return res, nil, err
	}
	if err := ctx.Err(); err != nil {
		return res, nil, fmt.Errorf("xcheck: verify %s: %w", name, err)
	}
	res.Cycles += layout.Cycles
	if res.Checks == 0 {
		res.Notes = append(res.Notes, "scan program produced no expectations")
	}
	res.finish()
	return res, atpg, nil
}
