package main

import (
	"encoding/json"
	"fmt"
	"os"

	"steac/internal/catalog"
	"steac/internal/recommend"
)

// The local catalog modes: dscflow can read a steacd results catalog
// directly off disk — no daemon required — to render compare tables and
// answer recommendation queries against it.
//
//	dscflow -catalog DIR -compare csv            tradeoff table to stdout (json, csv or html)
//	dscflow -catalog DIR -recommend -scenario S  suggest a DFT config for the scenario chip
//
// Unlike the daemon endpoints, the local modes see every tenant's records:
// whoever can read the directory owns the data, exactly like -resume and a
// campaign checkpoint directory.

// runCompareCLI renders the whole catalog as one tradeoff table.
func runCompareCLI(dir, format string) error {
	st, err := catalog.Open(dir)
	if err != nil {
		return err
	}
	defer st.Close()
	cmp := catalog.CompareRecords(st.List(catalog.Query{}))
	switch format {
	case "json":
		blob, err := cmp.JSON()
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(blob)
		return err
	case "csv":
		_, err = fmt.Print(cmp.CSV())
	case "html":
		_, err = fmt.Print(cmp.HTML())
	case "table":
		fmt.Print(cmp.Table().String())
	default:
		return fmt.Errorf("unknown -compare format %q (json, csv, html or table)", format)
	}
	return err
}

// runRecommendCLI profiles the scenario chip (-scenario/-seed, same flags
// as the flow) and prints the catalog's suggestion with its evidence.
func runRecommendCLI(dir, scenarioF string, seed int64, maxTamWidth int) error {
	chip, err := loadChip(scenarioF, seed)
	if err != nil {
		return err
	}
	st, err := catalog.Open(dir)
	if err != nil {
		return err
	}
	defer st.Close()
	sug, err := recommend.Recommend(st.List(catalog.Query{}), recommend.Request{
		Cores: chip.Cores, Memories: chip.Memories, MaxTamWidth: maxTamWidth,
	})
	if err != nil {
		return err
	}
	fmt.Printf("recommended DFT config for %s (seed %d), from %d cataloged records:\n",
		chip.Scenario, seed, st.Len())
	blob, err := json.MarshalIndent(sug, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(blob))
	return nil
}
