// Package testinfo models the per-core test information that flows from the
// core provider's ATPG into the STEAC platform (paper §2): IO ports, clock
// domains, scan structure (number of scan chains, length of each chain,
// dedicated or shared scan IOs), and the pattern sets (scan and functional)
// with their sizes.  Table 1 of the paper is exactly a rendering of this
// structure for the DSC chip's three wrapped cores.
package testinfo

import (
	"fmt"
	"sort"
)

// TestType distinguishes scan from functional pattern sets.
type TestType int

// Test types.
const (
	Scan TestType = iota
	Functional
)

// String names the test type the way Table 1 does.
func (t TestType) String() string {
	if t == Functional {
		return "Func."
	}
	return "Scan"
}

// ScanChain is one internal scan chain of a core.
type ScanChain struct {
	Name   string
	Length int
	// In and Out are the core's scan-in/scan-out pin names.
	In, Out string
	// Clock is the clock-domain pin that shifts this chain.
	Clock string
	// SharedOut marks a chain whose scan-out is multiplexed onto a
	// functional output (the TV encoder has one such chain), so it does
	// not cost a dedicated test output pin.
	SharedOut bool
}

// PatternSet is one named set of test patterns.
type PatternSet struct {
	Name  string
	Type  TestType
	Count int
	// Seed parameterizes the synthetic ATPG substitute that generates the
	// actual vectors (see package dsc); two equal seeds give identical
	// pattern data.
	Seed int64
}

// Core is the test information of one embedded core.
type Core struct {
	Name string
	// Soft cores allow scan-chain reconfiguration, so the scheduler's
	// chain rebalancing feedback applies to them (paper §2).
	Soft bool

	// Test control pins.
	Clocks      []string
	Resets      []string
	ScanEnables []string
	TestEnables []string

	// Functional primary IO counts (excluding test pins).
	PIs, POs int

	ScanChains []ScanChain
	Patterns   []PatternSet
}

// Validate checks internal consistency.
func (c *Core) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("testinfo: core with empty name")
	}
	if len(c.Clocks) == 0 {
		return fmt.Errorf("testinfo: core %s has no clock", c.Name)
	}
	if c.PIs < 0 || c.POs < 0 {
		return fmt.Errorf("testinfo: core %s has negative IO counts", c.Name)
	}
	clockSet := make(map[string]bool)
	for _, ck := range c.Clocks {
		clockSet[ck] = true
	}
	seen := make(map[string]bool)
	for _, ch := range c.ScanChains {
		if ch.Length <= 0 {
			return fmt.Errorf("testinfo: core %s chain %s has length %d", c.Name, ch.Name, ch.Length)
		}
		if seen[ch.Name] {
			return fmt.Errorf("testinfo: core %s duplicate chain %s", c.Name, ch.Name)
		}
		seen[ch.Name] = true
		if ch.Clock != "" && !clockSet[ch.Clock] {
			return fmt.Errorf("testinfo: core %s chain %s uses unknown clock %s", c.Name, ch.Name, ch.Clock)
		}
	}
	if len(c.ScanChains) > 0 && len(c.ScanEnables) == 0 {
		return fmt.Errorf("testinfo: core %s has scan chains but no scan enable", c.Name)
	}
	for _, p := range c.Patterns {
		if p.Count < 0 {
			return fmt.Errorf("testinfo: core %s pattern set %s has count %d", c.Name, p.Name, p.Count)
		}
		if p.Type == Scan && len(c.ScanChains) == 0 {
			return fmt.Errorf("testinfo: core %s has scan patterns but no chains", c.Name)
		}
	}
	return nil
}

// TestInputs returns TI as Table 1 counts it: test control pins (clocks,
// resets, scan enables, test enables) plus one dedicated scan-in per chain.
func (c *Core) TestInputs() int {
	return len(c.Clocks) + len(c.Resets) + len(c.ScanEnables) + len(c.TestEnables) +
		len(c.ScanChains)
}

// TestOutputs returns TO: one dedicated scan-out per chain that does not
// share a functional output.
func (c *Core) TestOutputs() int {
	n := 0
	for _, ch := range c.ScanChains {
		if !ch.SharedOut {
			n++
		}
	}
	return n
}

// ControlIOs returns the count of test *control* pins (clock + reset + SE +
// TE), the quantity the paper's shared-IO analysis reduces.
func (c *Core) ControlIOs() int {
	return len(c.Clocks) + len(c.Resets) + len(c.ScanEnables) + len(c.TestEnables)
}

// ChainLengths returns the scan chain lengths, longest first.
func (c *Core) ChainLengths() []int {
	ls := make([]int, len(c.ScanChains))
	for i, ch := range c.ScanChains {
		ls[i] = ch.Length
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ls)))
	return ls
}

// TotalScanBits returns the summed chain length (the number of scanned
// state elements).
func (c *Core) TotalScanBits() int {
	total := 0
	for _, ch := range c.ScanChains {
		total += ch.Length
	}
	return total
}

// ScanPatternCount sums the scan pattern sets.
func (c *Core) ScanPatternCount() int { return c.patternCount(Scan) }

// FunctionalPatternCount sums the functional pattern sets.
func (c *Core) FunctionalPatternCount() int { return c.patternCount(Functional) }

func (c *Core) patternCount(t TestType) int {
	total := 0
	for _, p := range c.Patterns {
		if p.Type == t {
			total += p.Count
		}
	}
	return total
}

// HasScan reports whether the core has internal scan.
func (c *Core) HasScan() bool { return len(c.ScanChains) > 0 }

// SharedControlIOs computes the test-control pin budget for a set of cores
// when compatible control signals are shared the way the paper's test
// controller shares them: clocks stay dedicated (each is a distinct PLL
// domain), resets stay dedicated, but the scan enables of all cores collapse
// onto one chip-level SE and the test enables are driven from the test
// controller's decoded outputs, costing ceil(log2(total TE + 1)) chip pins.
type SharedControlIOs struct {
	Clocks       int
	Resets       int
	ScanEnables  int
	TestEnables  int
	Dedicated    int // sum of per-core control IOs without sharing
	SharedTotal  int
	EncodedTEBit int
}

// ShareControlIOs aggregates the control pins of the given cores.
func ShareControlIOs(cores []*Core) SharedControlIOs {
	var s SharedControlIOs
	for _, c := range cores {
		s.Clocks += len(c.Clocks)
		s.Resets += len(c.Resets)
		s.ScanEnables += len(c.ScanEnables)
		s.TestEnables += len(c.TestEnables)
		s.Dedicated += c.ControlIOs()
	}
	se := 0
	if s.ScanEnables > 0 {
		se = 1 // one chip-level SE drives every core's SE
	}
	te := 0
	for v := s.TestEnables; v > 0; v >>= 1 {
		te++
	}
	s.EncodedTEBit = te
	s.SharedTotal = s.Clocks + s.Resets + se + te
	return s
}
