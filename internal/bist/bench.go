package bist

import (
	"fmt"

	"steac/internal/march"
	"steac/internal/memory"
	"steac/internal/netlist"
)

// BuildVerifyBench builds a self-contained testbench design for one
// sequencer group: the generated sequencer, one generated TPG per memory
// and the same enable gating GenerateBIST uses (EN = group enable AND
// sequencer RUN, ELEMDONE = AND of all TPG element-done flags, group fail =
// OR of all TPG fail flags).  The RAM macros are left out on purpose —
// every RAM pin is exposed at the bench top so a harness can emulate the
// macros cycle by cycle and observe the complete pin trace.
//
// Bench module "bench" ports: inputs ck, rst, en, bgsel, pbsel and per
// memory i q<i> (plus qb<i> for two-port macros); outputs cmdr, cmdd, dir,
// adv, elemdone, done, fail and per memory i addr<i>, d<i>, we<i>, fail<i>.
func BuildVerifyBench(alg march.Algorithm, mems []memory.Config) (*netlist.Design, error) {
	if len(mems) == 0 {
		return nil, fmt.Errorf("bist: verify bench needs at least one memory")
	}
	d := netlist.NewDesign("tb", nil)
	if _, err := GenerateSequencer(d, "seq", alg); err != nil {
		return nil, err
	}
	tb := netlist.NewModule("bench")
	for _, p := range []string{"ck", "rst", "en", "bgsel", "pbsel"} {
		tb.MustPort(p, netlist.In, 1)
	}
	for _, p := range []string{"cmdr", "cmdd", "dir", "adv", "elemdone", "done", "fail"} {
		tb.MustPort(p, netlist.Out, 1)
	}
	tb.MustInstance("u_seq", "seq", map[string]string{
		"CK": "ck", "RST": "rst", "EN": "en", "ELEMDONE": "elemdone",
		"CMDR": "cmdr", "CMDD": "cmdd", "DIR": "dir", "ADV": "adv",
		"DONE": "done", "RUN": "run",
	})
	tb.MustInstance("engate", netlist.CellAnd2, map[string]string{"A": "en", "B": "run", "Z": "tpen"})
	var elemDones, fails []string
	for i, cfg := range mems {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		tpgName := fmt.Sprintf("tpg%d", i)
		if _, err := GenerateTPG(d, tpgName, cfg); err != nil {
			return nil, err
		}
		ab := cfg.AddrBits()
		addrP, dP, qP := fmt.Sprintf("addr%d", i), fmt.Sprintf("d%d", i), fmt.Sprintf("q%d", i)
		weP, failP := fmt.Sprintf("we%d", i), fmt.Sprintf("fail%d", i)
		tb.MustPort(qP, netlist.In, cfg.Bits)
		tb.MustPort(addrP, netlist.Out, ab)
		tb.MustPort(dP, netlist.Out, cfg.Bits)
		tb.MustPort(weP, netlist.Out, 1)
		tb.MustPort(failP, netlist.Out, 1)
		ed := fmt.Sprintf("ed%d", i)
		tb.AddNet(ed)
		conns := map[string]string{
			"CK": "ck", "RST": "rst", "EN": "tpen", "ADV": "adv",
			"CMDR": "cmdr", "CMDD": "cmdd", "DIR": "dir", "BGSEL": "bgsel",
			"WE": weP, "ELEMDONE": ed, "FAIL": failP,
		}
		for b := 0; b < ab; b++ {
			conns[netlist.BitName("ADDR", b, ab)] = netlist.BitName(addrP, b, ab)
		}
		for b := 0; b < cfg.Bits; b++ {
			conns[netlist.BitName("D", b, cfg.Bits)] = netlist.BitName(dP, b, cfg.Bits)
			conns[netlist.BitName("Q", b, cfg.Bits)] = netlist.BitName(qP, b, cfg.Bits)
		}
		if cfg.Kind == memory.TwoPort {
			qbP := fmt.Sprintf("qb%d", i)
			tb.MustPort(qbP, netlist.In, cfg.Bits)
			for b := 0; b < cfg.Bits; b++ {
				conns[netlist.BitName("QB", b, cfg.Bits)] = netlist.BitName(qbP, b, cfg.Bits)
			}
			conns["PBSEL"] = "pbsel"
		}
		tb.MustInstance(fmt.Sprintf("u_tpg%d", i), tpgName, conns)
		elemDones = append(elemDones, ed)
		fails = append(fails, failP)
	}
	if _, err := netlist.AddAndTree(tb, "eda", elemDones, "elemdone"); err != nil {
		return nil, err
	}
	if _, err := netlist.AddOrTree(tb, "flo", fails, "fail"); err != nil {
		return nil, err
	}
	d.MustAddModule(tb)
	d.Top = "bench"
	if issues := d.Lint(); len(issues) > 0 {
		return nil, fmt.Errorf("bist: verify bench lint: %v", issues[0])
	}
	return d, nil
}
