package scenario

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"

	"steac/internal/brains"
	"steac/internal/core"
	"steac/internal/march"
	"steac/internal/memory"
	"steac/internal/netlist"
	"steac/internal/sched"
	"steac/internal/socgen"
	"steac/internal/testinfo"
	"steac/internal/wrapper"
)

// Chip is one concrete SOC sampled from a scenario spec: everything the
// flow consumes, plus the scenario/seed provenance so any engine result can
// be regenerated from two values.
type Chip struct {
	Scenario string
	Seed     int64

	Cores     []*testinfo.Core
	Memories  []memory.Config
	Blocks    map[string]float64
	Resources sched.Resources
	BIST      brains.Options
	// ExtraBIST holds the Bernardi-style logic-BIST sessions of converted
	// cores, scheduled like BRAINS groups (core.FlowInput.ExtraBIST).
	ExtraBIST []sched.BISTGroup
}

// GenerateByName resolves a registered scenario and samples one chip.
func GenerateByName(name string, seed int64) (*Chip, error) {
	spec, err := Resolve(name)
	if err != nil {
		return nil, err
	}
	return Generate(spec, seed)
}

// Generate samples one chip from a resolved spec.  The stream is seeded
// with seed ⊕ FNV(spec name), and every template is sampled in declaration
// order with a fixed per-field order, so the same (spec, seed) pair always
// yields the identical chip — across runs, GOMAXPROCS values and platforms
// (math/rand's generator is spec-stable).  A fully-pinned spec (all
// distributions fixed, all seeds set) draws nothing and is seed-invariant;
// that is what lets the dsc builtin reproduce Table 1 exactly.
func Generate(spec *Spec, seed int64) (*Chip, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(seed ^ nameHash(spec.Name)))
	chip := &Chip{Scenario: spec.Name, Seed: seed, Blocks: spec.Blocks}

	seen := map[string]bool{"pll": true, "soc": true}
	for b := range spec.Blocks {
		seen[lower(b)] = true
	}
	for ti := range spec.Cores {
		cs := &spec.Cores[ti]
		count := cs.Count.sample(r, 1)
		for i := 0; i < count; i++ {
			name := cs.Name
			if count > 1 {
				name = fmt.Sprintf("%s%d", cs.Name, i)
			}
			if seen[lower(name)] {
				return nil, fmt.Errorf("%w: core instance %q", ErrDuplicateName, name)
			}
			seen[lower(name)] = true
			chip.Cores = append(chip.Cores, genCore(r, cs, name, int64(i)))
		}
	}
	memSeen := map[string]bool{}
	for ti := range spec.Memories {
		ms := &spec.Memories[ti]
		count := ms.Count.sample(r, 1)
		for i := 0; i < count; i++ {
			name := ms.Name
			if count > 1 {
				name = fmt.Sprintf("%s%d", ms.Name, i)
			}
			if memSeen[name] {
				return nil, fmt.Errorf("%w: memory instance %q", ErrDuplicateName, name)
			}
			memSeen[name] = true
			chip.Memories = append(chip.Memories, genMemory(r, ms, name))
		}
	}

	chip.Resources = sched.Resources{TestPins: 26, FuncPins: 300, Partitioner: wrapper.LPT}
	if rs := spec.Resources; rs != nil {
		if rs.TestPins > 0 {
			chip.Resources.TestPins = rs.TestPins
		}
		if rs.FuncPins > 0 {
			chip.Resources.FuncPins = rs.FuncPins
		}
		chip.Resources.MaxPower = rs.MaxPower
		chip.Resources.PowerBudget = rs.PowerBudget
		part, err := partitionerByName(rs.Partitioner)
		if err != nil {
			return nil, err
		}
		chip.Resources.Partitioner = part
	}
	if bs := spec.BIST; bs != nil {
		if bs.Algorithm != "" {
			alg, ok := march.ByName(bs.Algorithm)
			if !ok {
				return nil, fmt.Errorf("%w: unknown March algorithm %q", ErrBadSpec, bs.Algorithm)
			}
			chip.BIST.Algorithm = alg
		}
		grouping, err := groupingByName(bs.Grouping)
		if err != nil {
			return nil, err
		}
		chip.BIST.Grouping = grouping
		chip.BIST.Backgrounds = bs.Backgrounds
	}

	if lb := spec.LogicBIST; lb != nil && lb.Fraction > 0 {
		applyLogicBIST(r, lb, chip)
	}
	return chip, nil
}

// genCore samples one core instance.  Pin names follow the DSC convention:
// a single clock is "<name>_ck", several are "<name>_ck0..", resets
// "_rst"/"_rst0..", the scan enable "_se", a single test enable "_te",
// several "_t0..", chains "c0.." with "_si0.."/"_so0.." scan IOs and
// "_po_shared" for a functional-shared scan-out.
func genCore(r *rand.Rand, cs *CoreSpec, name string, inst int64) *testinfo.Core {
	low := lower(name)
	c := &testinfo.Core{Name: name, Soft: cs.Soft}
	c.Clocks = pinNames(low, "ck", "ck", cs.Clocks.sample(r, 1))
	c.Resets = pinNames(low, "rst", "rst", cs.Resets.sample(r, 1))
	c.TestEnables = pinNames(low, "te", "t", cs.TestEnables.sample(r, 0))
	c.PIs = cs.PIs.sample(r, 16)
	c.POs = cs.POs.sample(r, 16)

	lengths := cs.ChainLengths
	if len(lengths) == 0 {
		n := cs.Chains.sample(r, 0)
		for k := 0; k < n; k++ {
			lengths = append(lengths, cs.ChainLength.sample(r, 100))
		}
	}
	if len(lengths) > 0 {
		c.ScanEnables = []string{low + "_se"}
		shared := cs.SharedOuts
		if shared > len(lengths) {
			shared = len(lengths)
		}
		for k, l := range lengths {
			out := fmt.Sprintf("%s_so%d", low, k)
			sharedOut := k >= len(lengths)-shared
			if sharedOut {
				out = low + "_po_shared"
				if shared > 1 {
					out = fmt.Sprintf("%s_po_shared%d", low, k-(len(lengths)-shared))
				}
			}
			c.ScanChains = append(c.ScanChains, testinfo.ScanChain{
				Name:      fmt.Sprintf("c%d", k),
				Length:    l,
				In:        fmt.Sprintf("%s_si%d", low, k),
				Out:       out,
				Clock:     c.Clocks[k%len(c.Clocks)],
				SharedOut: sharedOut,
			})
		}
		if n := cs.ScanPatterns.sample(r, 64); n > 0 {
			seed := cs.ScanSeed
			if seed == 0 {
				seed = r.Int63()
			} else {
				seed += inst // distinct patterns per stamped-out instance
			}
			c.Patterns = append(c.Patterns, testinfo.PatternSet{
				Name: "scan", Type: testinfo.Scan, Count: n, Seed: seed,
			})
		}
	}
	if n := cs.FuncPatterns.sample(r, 0); n > 0 {
		seed := cs.FuncSeed
		if seed == 0 {
			seed = r.Int63()
		} else {
			seed += inst
		}
		c.Patterns = append(c.Patterns, testinfo.PatternSet{
			Name: "func", Type: testinfo.Functional, Count: n, Seed: seed,
		})
	}
	return c
}

// pinNames names n control pins: none, a single "<low>_<single>", or
// "<low>_<multi>0..".  The single/multi bases differ for test enables
// ("te" vs "t0.."), matching the DSC cores.
func pinNames(low, single, multi string, n int) []string {
	switch {
	case n <= 0:
		return nil
	case n == 1:
		return []string{low + "_" + single}
	}
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s_%s%d", low, multi, i)
	}
	return out
}

func genMemory(r *rand.Rand, ms *MemorySpec, name string) memory.Config {
	cfg := memory.Config{
		Name:  name,
		Words: ms.Words.sample(r, 1024),
		Bits:  ms.Bits.sample(r, 16),
		Kind:  memory.SinglePort,
	}
	twoPort := ms.TwoPort
	if ms.TwoPortFrac > 0 {
		twoPort = r.Float64() < ms.TwoPortFrac
	}
	if twoPort {
		cfg.Kind = memory.TwoPort
	}
	return cfg
}

// applyLogicBIST converts a Bernoulli-selected subset of the scanned cores
// to hybrid logic-BIST (Bernardi-style P1500 logic-core BIST): the core
// keeps ceil(TopUp × patterns) external scan patterns as deterministic
// top-up and gains a fixed-length LBIST session — patterns × (longest
// chain + 1) capture/shift cycles plus a start cycle — that the scheduler
// fills into session slack like any BRAINS group.  The draw runs once per
// scanned core in core order, selected or not, so the sampled stream stays
// aligned regardless of the outcomes.
func applyLogicBIST(r *rand.Rand, lb *LogicBISTSpec, chip *Chip) {
	topUp := lb.TopUp
	if topUp <= 0 {
		topUp = 0.1
	}
	powerScale := lb.PowerScale
	if powerScale <= 0 {
		powerScale = 1
	}
	for _, c := range chip.Cores {
		if !c.HasScan() || c.ScanPatternCount() == 0 {
			continue
		}
		selected := r.Float64() < lb.Fraction
		if !selected {
			continue
		}
		patterns := lb.Patterns.sample(r, 1024)
		longest := 0
		for _, ch := range c.ScanChains {
			if ch.Length > longest {
				longest = ch.Length
			}
		}
		for i := range c.Patterns {
			if c.Patterns[i].Type != testinfo.Scan {
				continue
			}
			kept := int(math.Ceil(float64(c.Patterns[i].Count) * topUp))
			if kept < 1 {
				kept = 1
			}
			c.Patterns[i].Count = kept
		}
		chip.ExtraBIST = append(chip.ExtraBIST, sched.BISTGroup{
			Name:   "lbist." + c.Name,
			Cycles: patterns*(longest+1) + 1,
			Power:  sched.ScanPower(c) * powerScale,
		})
	}
}

// nameHash folds the scenario name into the seed so equal seeds on
// different scenarios sample unrelated streams.
func nameHash(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64())
}

func partitionerByName(name string) (wrapper.Partitioner, error) {
	switch name {
	case "", "lpt":
		return wrapper.LPT, nil
	case "firstfit":
		return wrapper.FirstFit, nil
	case "optimal":
		return wrapper.Optimal, nil
	}
	return wrapper.LPT, fmt.Errorf("%w: unknown partitioner %q (lpt, firstfit or optimal)", ErrBadSpec, name)
}

func groupingByName(name string) (brains.Grouping, error) {
	switch name {
	case "", "by-kind":
		return brains.GroupByKind, nil
	case "per-memory":
		return brains.GroupPerMemory, nil
	case "single":
		return brains.GroupSingle, nil
	}
	return brains.GroupByKind, fmt.Errorf("%w: unknown BIST grouping %q (per-memory, by-kind or single)", ErrBadSpec, name)
}

// BuildSOC generates the chip's behavioural SOC netlist via socgen.
func (c *Chip) BuildSOC() (*netlist.Design, error) {
	return socgen.Build(c.Cores, socgen.Options{Name: c.Scenario, Blocks: c.Blocks})
}

// FlowInput assembles the complete STEAC flow input for the chip: emitted
// STIL hand-off files, the generated SOC netlist, resource budget, memory
// inventory, BIST options and the logic-BIST extra groups.
func (c *Chip) FlowInput(verify bool) (core.FlowInput, error) {
	soc, err := c.BuildSOC()
	if err != nil {
		return core.FlowInput{}, err
	}
	stils, err := core.EmitSTIL(c.Cores)
	if err != nil {
		return core.FlowInput{}, err
	}
	return core.FlowInput{
		STIL:        stils,
		SOC:         soc,
		Resources:   c.Resources,
		Memories:    c.Memories,
		BISTOptions: c.BIST,
		ExtraBIST:   c.ExtraBIST,
		Verify:      verify,
	}, nil
}

// memSize orders memories for the selectors below.
func memSize(m memory.Config) int { return m.Words * m.Bits }

// SmallestMemories returns up to n memories sorted by bit count (then
// name) — the macros cheap enough for exhaustive gate-level campaigns.
func (c *Chip) SmallestMemories(n int) []memory.Config {
	out := append([]memory.Config(nil), c.Memories...)
	sort.Slice(out, func(a, b int) bool {
		if memSize(out[a]) != memSize(out[b]) {
			return memSize(out[a]) < memSize(out[b])
		}
		return out[a].Name < out[b].Name
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// PairMemories returns the cheapest two memories of identical kind and
// width — the lockstep pair for a multi-memory sequencer group — ordered
// by name.  ok is false when no two memories share a geometry class.
func (c *Chip) PairMemories() (pair [2]memory.Config, ok bool) {
	type class struct {
		kind memory.Kind
		bits int
	}
	groups := map[class][]memory.Config{}
	for _, m := range c.Memories {
		k := class{m.Kind, m.Bits}
		groups[k] = append(groups[k], m)
	}
	bestSum := 0
	for _, mems := range groups {
		if len(mems) < 2 {
			continue
		}
		sort.Slice(mems, func(a, b int) bool {
			if memSize(mems[a]) != memSize(mems[b]) {
				return memSize(mems[a]) < memSize(mems[b])
			}
			return mems[a].Name < mems[b].Name
		})
		sum := memSize(mems[0]) + memSize(mems[1])
		first, second := mems[0], mems[1]
		if first.Name > second.Name {
			first, second = second, first
		}
		if !ok || sum < bestSum || (sum == bestSum && first.Name < pair[0].Name) {
			pair, bestSum, ok = [2]memory.Config{first, second}, sum, true
		}
	}
	return pair, ok
}

// WrapperCore returns the scanned core with the cheapest full wrapper
// verification (patterns × scan bits), or nil when no core has scan
// patterns.  This is the core dscflow and the conformance suite push
// through the full P1500 wrapper differential.
func (c *Chip) WrapperCore() *testinfo.Core {
	var best *testinfo.Core
	bestCost := 0
	for _, core := range c.Cores {
		if !core.HasScan() || core.ScanPatternCount() == 0 {
			continue
		}
		cost := core.ScanPatternCount() * core.TotalScanBits()
		if best == nil || cost < bestCost || (cost == bestCost && core.Name < best.Name) {
			best, bestCost = core, cost
		}
	}
	return best
}
