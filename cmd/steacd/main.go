// Command steacd runs the STEAC platform as a long-lived HTTP/JSON
// service: POST flow requests (the full DSC integration flow, scheduling
// sweeps, memory-fault coverage grading, gate-level xcheck campaigns) and
// read results synchronously.  Identical requests are answered from a
// content-addressed cache; concurrency is bounded by a worker pool behind
// a FIFO admission queue that rejects overload with 429 instead of
// queueing without bound.
//
// Usage:
//
//	steacd -addr :8080 -workers 4 -queue 16 -cache 128 -timeout 120
//
// Endpoints:
//
//	POST /v1/flow      {"chip":"dsc","verify":true}
//	POST /v1/sched     {"chip":"dsc","test_pins":[18,22,26,30]}
//	POST /v1/memfault  {"words":64,"bits":4,"algorithms":["March C-"]}
//	POST /v1/xcheck    {"kind":"controller","n_groups":3}
//	POST   /v1/jobs       {"kind":"memfault","spec":{...}} — async campaign job, returns id
//	GET    /v1/jobs/{id}  job progress (shards done/total, ETA, counters) or final report
//	DELETE /v1/jobs/{id}  cancel a job at the next shard boundary (checkpoint kept)
//	GET  /v1/catalog               results-catalog listing (-catalog-dir; filters: scenario, kind, min/max_coverage, limit)
//	GET  /v1/catalog/{fingerprint} one catalog record
//	GET  /v1/catalog/compare       tradeoff table (?format=json|csv|html)
//	POST /v1/recommend  {"scenario":"memory-heavy","seed":1} — DFT suggestion from prior results
//	GET  /healthz      200 "ok" while serving, 503 "draining" during shutdown
//	GET  /metrics      every obs counter/gauge as "name value" text
//
// Jobs are content-addressed by their spec: with -job-dir set, each job
// journals completed shards under <job-dir>/<id>, and re-POSTing the same
// spec after a crash or restart resumes from that checkpoint.
//
// Multi-tenant mode (-tenants file.json, a JSON array of
// {id,key,rate_per_sec,burst,max_jobs,weight} rows) attributes every
// request to a tenant by API key (Authorization: Bearer or X-API-Key).
// Unknown keys answer a typed 401; each tenant gets a token-bucket rate
// limit, a concurrent-job quota, and its own deficit-round-robin
// fair-queue lane, so one tenant's flood never starves another.  Job
// ownership is tenant-scoped and survives restarts via the durable job
// database under -job-dir.  Per-tenant counters appear on /metrics as
// serve.tenant.<id>.*.  Every non-2xx response carries the v1 error
// envelope {"error","code"}.
//
// Fabric mode scales campaigns across processes.  With -coordinator, the
// daemon additionally serves the /v1/fabric/* lease protocol over
// -fabric-dir (shared checkpoint root, lease TTL -fabric-ttl), and job
// submissions with "fabric": true are dealt out to joined nodes.  With
// -join URL, the daemon runs a node agent that leases shards from that
// coordinator and journals them under -fabric-dir as writer -node-id; a
// daemon may both coordinate and join itself:
//
//	steacd -addr :8080 -coordinator -fabric-dir /ckpt -join http://127.0.0.1:8080
//	steacd -addr :8081 -fabric-dir /ckpt -join http://127.0.0.1:8080
//
// SIGTERM/SIGINT drain gracefully: the listener stops accepting, running
// campaign jobs checkpoint their in-flight shards and stop, queued and
// in-flight requests finish (bounded by -drain-timeout), then the process
// exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"steac/internal/fabric"
	"steac/internal/obs"
	"steac/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "compute worker pool size (0 = GOMAXPROCS)")
		queue       = flag.Int("queue", 16, "admission queue depth (full queue answers 429)")
		cache       = flag.Int("cache", 128, "response cache entries (LRU)")
		timeoutS    = flag.Int("timeout", 120, "default per-request deadline, seconds")
		maxTimeoutS = flag.Int("max-timeout", 600, "ceiling on client-requested deadlines, seconds")
		drainS      = flag.Int("drain-timeout", 60, "graceful shutdown budget, seconds")
		jobDir      = flag.String("job-dir", "", "checkpoint root for async campaign jobs (empty = in-memory only; no resume across restarts)")
		catalogDir  = flag.String("catalog-dir", "", "durable results-catalog root (empty = no catalog; /v1/catalog and /v1/recommend answer 400)")
		maxJobs     = flag.Int("max-jobs", 0, "concurrently running campaign jobs (0 = 2)")
		tenantsFile = flag.String("tenants", "", "tenants file (JSON array of {id,key,rate_per_sec,burst,max_jobs,weight}); empty serves anonymously")
		enableSpans = flag.Bool("obs", false, "enable span timing (counters are always live)")

		coordinator = flag.Bool("coordinator", false, "serve the /v1/fabric/* lease protocol (requires -fabric-dir)")
		fabricDir   = flag.String("fabric-dir", "", "shared checkpoint root for fabric campaigns")
		fabricTTLs  = flag.Int("fabric-ttl", 15, "fabric lease TTL, seconds; a lease not heartbeated within the TTL is re-leased")
		joinURL     = flag.String("join", "", "coordinator base URL to lease shards from (node agent mode)")
		nodeID      = flag.String("node-id", "", "fabric node/journal-writer name (default host-pid)")
	)
	flag.Parse()
	if *enableSpans {
		obs.Enable()
	}

	var tenants *serve.TenantSet
	if *tenantsFile != "" {
		var err error
		if tenants, err = serve.LoadTenants(*tenantsFile); err != nil {
			fmt.Fprintf(os.Stderr, "steacd: %v\n", err)
			os.Exit(2)
		}
	}

	var coord *fabric.Coordinator
	if *coordinator {
		if *fabricDir == "" {
			fmt.Fprintln(os.Stderr, "steacd: -coordinator requires -fabric-dir")
			os.Exit(2)
		}
		var err error
		coord, err = fabric.New(fabric.Config{
			Dir: *fabricDir,
			TTL: time.Duration(*fabricTTLs) * time.Second,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "steacd: %v\n", err)
			os.Exit(1)
		}
	}

	srv := serve.New(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cache,
		DefaultTimeout: time.Duration(*timeoutS) * time.Second,
		MaxTimeout:     time.Duration(*maxTimeoutS) * time.Second,
		Tenants:        tenants,
		JobDir:         *jobDir,
		CatalogDir:     *catalogDir,
		MaxJobs:        *maxJobs,
		Fabric:         coord,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	var agentDone chan struct{}
	if *joinURL != "" {
		if *fabricDir == "" {
			fmt.Fprintln(os.Stderr, "steacd: -join requires -fabric-dir")
			os.Exit(2)
		}
		id := *nodeID
		if id == "" {
			host, _ := os.Hostname()
			if host == "" {
				host = "node"
			}
			id = fmt.Sprintf("%s-%d", host, os.Getpid())
		}
		node := &fabric.Node{
			ID:      id,
			Client:  &fabric.Client{Base: *joinURL},
			Dir:     *fabricDir,
			Workers: *workers,
		}
		agentDone = make(chan struct{})
		go func() {
			defer close(agentDone)
			fmt.Fprintf(os.Stderr, "steacd: node %s joined fabric at %s\n", id, *joinURL)
			if err := node.Run(ctx); err != nil && ctx.Err() == nil {
				fmt.Fprintf(os.Stderr, "steacd: fabric node: %v\n", err)
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "steacd: listening on %s\n", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		// Listener failed before any signal (port in use, ...).
		fmt.Fprintf(os.Stderr, "steacd: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "steacd: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), time.Duration(*drainS)*time.Second)
	defer cancel()
	// Stop accepting connections and wait for in-flight HTTP exchanges,
	// then wait for the compute pool to finish what was admitted.
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "steacd: shutdown: %v\n", err)
	}
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "steacd: %v\n", err)
		os.Exit(1)
	}
	if agentDone != nil {
		// The node agent stops at the signal context; every shard it
		// acknowledged is already fsync'd in its journal.
		select {
		case <-agentDone:
		case <-drainCtx.Done():
		}
	}
	fmt.Fprintln(os.Stderr, "steacd: drained clean")
}
