package insertion

import (
	"context"
	"strings"
	"testing"

	"steac/internal/brains"
	"steac/internal/memory"
	"steac/internal/netlist"
	"steac/internal/sched"
	"steac/internal/testinfo"
	"steac/internal/wrapper"
)

func smallCore() *testinfo.Core {
	return &testinfo.Core{
		Name:        "CPU",
		Clocks:      []string{"ck"},
		Resets:      []string{"rst"},
		ScanEnables: []string{"se"},
		TestEnables: []string{"te"},
		PIs:         8, POs: 6,
		ScanChains: []testinfo.ScanChain{
			{Name: "c0", Length: 17, In: "si0", Out: "so0", Clock: "ck"},
			{Name: "c1", Length: 9, In: "si1", Out: "so1", Clock: "ck"},
		},
		Patterns: []testinfo.PatternSet{
			{Name: "scan", Type: testinfo.Scan, Count: 6, Seed: 77},
			{Name: "func", Type: testinfo.Functional, Count: 20, Seed: 78},
		},
	}
}

func smallSOC(t *testing.T, core *testinfo.Core) *netlist.Design {
	t.Helper()
	d := netlist.NewDesign("mini", nil)
	if _, err := wrapper.GenerateCoreModule(d, core); err != nil {
		t.Fatal(err)
	}
	glue := netlist.NewModule("glue")
	glue.Behavioral = true
	glue.AreaOverride = 5000
	glue.MustPort("clk", netlist.In, 1)
	d.MustAddModule(glue)

	top := netlist.NewModule("soc")
	top.MustPort("clk", netlist.In, 1)
	top.MustPort("rst", netlist.In, 1)
	top.MustPort("pi", netlist.In, core.PIs)
	top.MustPort("po", netlist.Out, core.POs)
	conns := map[string]string{"ck": "clk", "rst": "rst"}
	for i := 0; i < core.PIs; i++ {
		conns[netlist.BitName("pi", i, core.PIs)] = netlist.BitName("pi", i, core.PIs)
	}
	for i := 0; i < core.POs; i++ {
		conns[netlist.BitName("po", i, core.POs)] = netlist.BitName("po", i, core.POs)
	}
	top.MustInstance("u_CPU", wrapper.CoreModuleName(core.Name), conns)
	top.MustInstance("u_glue", "glue", map[string]string{"clk": "clk"})
	d.MustAddModule(top)
	d.Top = "soc"
	return d
}

func schedule(t *testing.T, core *testinfo.Core, bist []sched.BISTGroup) (*sched.Schedule, sched.Resources) {
	t.Helper()
	res := sched.Resources{TestPins: 20, FuncPins: 16, Partitioner: wrapper.LPT}
	tests, err := sched.BuildTests([]*testinfo.Core{core}, bist)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.SessionBasedContext(context.Background(), tests, res)
	if err != nil {
		t.Fatal(err)
	}
	return s, res
}

func TestInsertWithoutBIST(t *testing.T) {
	core := smallCore()
	soc := smallSOC(t, core)
	s, res := schedule(t, core, nil)
	ins, err := Insert(soc, []*testinfo.Core{core}, s, res, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if issues := ins.Design.Lint(); len(issues) != 0 {
		t.Fatalf("lint: %v", issues)
	}
	if ins.Top.Name != "soc_dft" {
		t.Fatalf("top = %s", ins.Top.Name)
	}
	// Core instance replaced by its wrapped version.
	var inst *netlist.Instance
	for _, i := range ins.Top.Instances {
		if i.Name == "u_CPU" {
			inst = i
		}
	}
	if inst == nil || inst.Of != "wrap_CPU" {
		t.Fatalf("core instance not wrapped: %+v", inst)
	}
	if ins.WBRCells != core.PIs+core.POs {
		t.Fatalf("WBR cells = %d, want %d", ins.WBRCells, core.PIs+core.POs)
	}
	if ins.ControllerGates <= 0 || ins.TAMGates <= 0 {
		t.Fatalf("areas: ctl %.0f tam %.0f", ins.ControllerGates, ins.TAMGates)
	}
	if ins.ChipLogicGates <= 0 || ins.OverheadPct <= 0 {
		t.Fatalf("chip %.0f overhead %.2f", ins.ChipLogicGates, ins.OverheadPct)
	}
	v, err := ins.Design.EmitVerilogString()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"module soc_dft", "tacs", "tammux", "wrap_CPU"} {
		if !strings.Contains(v, want) {
			t.Fatalf("emitted DFT netlist missing %q", want)
		}
	}
}

func TestInsertWithBIST(t *testing.T) {
	core := smallCore()
	soc := smallSOC(t, core)
	b, err := brains.CompileContext(context.Background(), []memory.Config{
		{Name: "m0", Words: 256, Bits: 8},
		{Name: "m1", Words: 128, Bits: 16, Kind: memory.TwoPort},
	}, brains.Options{})
	if err != nil {
		t.Fatal(err)
	}
	groups := make([]sched.BISTGroup, len(b.Groups))
	for i, g := range b.Groups {
		groups[i] = sched.BISTGroup{Name: g.Name, Cycles: brains.GroupCycles(g) + 1,
			Power: brains.GroupPower(g)}
	}
	s, res := schedule(t, core, groups)
	ins, err := Insert(soc, []*testinfo.Core{core}, s, res, b.Design, b.Top.Name)
	if err != nil {
		t.Fatal(err)
	}
	if issues := ins.Design.Lint(); len(issues) != 0 {
		t.Fatalf("lint: %v", issues)
	}
	if ins.BISTGates <= 0 {
		t.Fatal("BIST area missing")
	}
	if ins.Design.Module("membist") == nil {
		t.Fatal("BIST subsystem not merged")
	}
	if ins.Top.Instance("u_membist") == nil {
		t.Fatal("BIST not instantiated")
	}
}

func TestInsertErrors(t *testing.T) {
	core := smallCore()
	s, res := schedule(t, core, nil)
	if _, err := Insert(nil, []*testinfo.Core{core}, s, res, nil, ""); err == nil {
		t.Fatal("nil design accepted")
	}
	empty := netlist.NewDesign("e", nil)
	if _, err := Insert(empty, []*testinfo.Core{core}, s, res, nil, ""); err == nil {
		t.Fatal("design without top accepted")
	}
	// Merge collision: BIST design sharing a module name with the SOC.
	soc := smallSOC(t, core)
	coll := netlist.NewDesign("c", nil)
	g := netlist.NewModule("glue")
	g.Behavioral = true
	coll.MustAddModule(g)
	if _, err := Insert(soc, []*testinfo.Core{core}, s, res, coll, "glue"); err == nil {
		t.Fatal("merge collision accepted")
	}
}

// The full DFT netlist survives Verilog emit -> parse -> emit (fixed
// point), so the inserted design can be handed off as a file.
func TestDFTNetlistVerilogRoundTrip(t *testing.T) {
	core := smallCore()
	soc := smallSOC(t, core)
	s, res := schedule(t, core, nil)
	ins, err := Insert(soc, []*testinfo.Core{core}, s, res, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	v1, err := ins.Design.EmitVerilogString()
	if err != nil {
		t.Fatal(err)
	}
	back, err := netlist.ParseVerilog(v1, nil)
	if err != nil {
		t.Fatal(err)
	}
	back.Top = ins.Design.Top
	v2, err := back.EmitVerilogString()
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatal("DFT netlist round trip is not a fixed point")
	}
	if issues := back.Lint(); len(issues) != 0 {
		t.Fatalf("parsed DFT netlist lint: %v", issues)
	}
	a1, _ := ins.Design.Area(ins.Design.Top)
	a2, err := back.Area(back.Top)
	if err != nil || a1 != a2 {
		t.Fatalf("area changed: %v vs %v (%v)", a1, a2, err)
	}
}
