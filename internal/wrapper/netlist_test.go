package wrapper

import (
	"testing"

	"steac/internal/netlist"
	"steac/internal/testinfo"
)

func TestWBRCellArea(t *testing.T) {
	d := netlist.NewDesign("d", nil)
	if _, err := GenerateWBRCell(d); err != nil {
		t.Fatal(err)
	}
	a, err := d.Area(WBRCellName)
	if err != nil {
		t.Fatal(err)
	}
	if a != WBRCellGates {
		t.Fatalf("WBR cell area = %v gates, paper reports %d", a, WBRCellGates)
	}
	// Idempotent.
	if _, err := GenerateWBRCell(d); err != nil {
		t.Fatal(err)
	}
	if issues := d.Lint(); len(issues) != 0 {
		t.Fatalf("WBR lint: %v", issues)
	}
}

func TestWBRCellBehaviour(t *testing.T) {
	d := netlist.NewDesign("d", nil)
	if _, err := GenerateWBRCell(d); err != nil {
		t.Fatal(err)
	}
	sim, err := netlist.NewSimulator(d, WBRCellName)
	if err != nil {
		t.Fatal(err)
	}
	tick := func() {
		t.Helper()
		if err := sim.Tick("WRCK"); err != nil {
			t.Fatal(err)
		}
	}
	settle := func() {
		t.Helper()
		if err := sim.Settle(); err != nil {
			t.Fatal(err)
		}
	}
	// Functional transparency: MODE=0 passes CFI to CFO.
	sim.Set("CFI", true)
	sim.Set("MODE", false)
	settle()
	if !sim.Get("CFO") {
		t.Fatal("MODE=0 not transparent")
	}
	// Shift: CTI reaches CTO after one WRCK.
	sim.Set("SHIFT", true)
	sim.Set("CTI", true)
	tick()
	if !sim.Get("CTO") {
		t.Fatal("shift did not load CTI")
	}
	// Update transfers the shift flop to the update latch; MODE=1 drives
	// CFO from it.
	if err := sim.Tick("UPDATE"); err != nil {
		t.Fatal(err)
	}
	sim.Set("MODE", true)
	sim.Set("CFI", false)
	settle()
	if !sim.Get("CFO") {
		t.Fatal("MODE=1 did not drive update value")
	}
	// SAFE forces the safe (0) value.
	sim.Set("SAFE", true)
	settle()
	if sim.Get("CFO") {
		t.Fatal("SAFE did not force 0")
	}
	sim.Set("SAFE", false)
	// Capture: SHIFT=0 captures CFI into the shift flop.
	sim.Set("SHIFT", false)
	sim.Set("CFI", true)
	tick()
	if !sim.Get("CTO") {
		t.Fatal("capture did not load CFI")
	}
}

// tinyCore declares a 2-PI/2-PO core with one 3-bit scan chain and builds a
// real structural implementation so the wrapped design can be simulated.
func tinyCore(t *testing.T, d *netlist.Design) *testinfo.Core {
	t.Helper()
	core := &testinfo.Core{
		Name:        "TINY",
		Clocks:      []string{"ck"},
		ScanEnables: []string{"se"},
		PIs:         2, POs: 2,
		ScanChains: []testinfo.ScanChain{{Name: "c0", Length: 3, In: "si0", Out: "so0", Clock: "ck"}},
		Patterns:   []testinfo.PatternSet{{Name: "scan", Type: testinfo.Scan, Count: 4, Seed: 5}},
	}
	m := netlist.NewModule(CoreModuleName(core.Name))
	m.MustPort("pi", netlist.In, 2)
	m.MustPort("po", netlist.Out, 2)
	m.MustPort("si0", netlist.In, 1)
	m.MustPort("so0", netlist.Out, 1)
	m.MustPort("ck", netlist.In, 1)
	m.MustPort("se", netlist.In, 1)
	// Chain: f0 -> f1 -> f2 (so0 = f2.Q).  Functional D: f0 <= pi0,
	// f1 <= q0, f2 <= pi1 XOR q1.
	m.MustInstance("f0", netlist.CellSDFF,
		map[string]string{"D": "pi[0]", "SI": "si0", "SE": "se", "CK": "ck", "Q": "q0"})
	m.MustInstance("f1", netlist.CellSDFF,
		map[string]string{"D": "q0", "SI": "q0x", "SE": "se", "CK": "ck", "Q": "q1"})
	m.MustInstance("fb0", netlist.CellBuf, map[string]string{"A": "q0", "Z": "q0x"})
	m.MustInstance("x2", netlist.CellXor2, map[string]string{"A": "pi[1]", "B": "q1", "Z": "d2"})
	m.MustInstance("f2", netlist.CellSDFF,
		map[string]string{"D": "d2", "SI": "q1x", "SE": "se", "CK": "ck", "Q": "so0"})
	m.MustInstance("fb1", netlist.CellBuf, map[string]string{"A": "q1", "Z": "q1x"})
	// po0 = q2 (so0), po1 = q0 AND pi1.
	m.MustInstance("ob0", netlist.CellBuf, map[string]string{"A": "so0", "Z": "po[0]"})
	m.MustInstance("oa1", netlist.CellAnd2, map[string]string{"A": "q0", "B": "pi[1]", "Z": "po[1]"})
	d.MustAddModule(m)
	return core
}

// TestWrapperIntestGateLevel loads a full wrapper-chain vector, captures,
// and unloads, comparing the generated hardware against a Go reference of
// the 7-cell serial path [ib0 ib1 f0 f1 f2 ob0 ob1].
func TestWrapperIntestGateLevel(t *testing.T) {
	d := netlist.NewDesign("d", nil)
	core := tinyCore(t, d)
	plan, err := DesignChains(core, 1, LPT)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := Generate(d, core, plan)
	if err != nil {
		t.Fatal(err)
	}
	if gen.WBRCells != 4 {
		t.Fatalf("WBR cells = %d, want 4", gen.WBRCells)
	}
	if issues := d.Lint(); len(issues) != 0 {
		t.Fatalf("wrapper lint: %v", issues)
	}
	// Bench ties the core clock and the wrapper clock to one test clock,
	// as the chip-level test controller does.
	bench := netlist.NewModule("bench")
	for _, p := range []string{"wrck", "shift", "update", "mode", "safe",
		"shiftwir", "updatewir", "se", "wsi"} {
		bench.MustPort(p, netlist.In, 1)
	}
	bench.MustPort("pi", netlist.In, 2)
	bench.MustPort("po", netlist.Out, 2)
	bench.MustPort("wso", netlist.Out, 1)
	bench.MustPort("wirso", netlist.Out, 1)
	bench.MustInstance("u_wrap", "wrap_TINY", map[string]string{
		"pi[0]": "pi[0]", "pi[1]": "pi[1]", "po[0]": "po[0]", "po[1]": "po[1]",
		"wrck": "wrck", "ck": "wrck", "shift": "shift", "update": "update",
		"mode": "mode", "safe": "safe", "shiftwir": "shiftwir",
		"updatewir": "updatewir", "se": "se", "wsi": "wsi", "wso": "wso",
		"wirso": "wirso",
	})
	d.MustAddModule(bench)
	d.Top = "bench"
	sim, err := netlist.NewSimulator(d, "bench")
	if err != nil {
		t.Fatal(err)
	}
	tick := func(net string) {
		t.Helper()
		if err := sim.Tick(net); err != nil {
			t.Fatal(err)
		}
	}
	// The wrapper routes wsi -> ib0 -> ib1 -> f0 -> f1 -> f2 -> ob0 -> ob1 -> wso.
	load := []bool{true, false, true, true, false, true, false}
	sim.Set("mode", true)
	sim.Set("safe", false)
	sim.Set("shift", true)
	sim.Set("se", true)
	for i := 0; i < 7; i++ {
		sim.Set("wsi", load[i])
		tick("wrck")
	}
	// After 7 shifts, cell k holds load[6-k]: ib0=load[6], ib1=load[5],
	// f0..f2 = load[4..2], ob0=load[1], ob1=load[0].
	cells := []bool{load[6], load[5], load[4], load[3], load[2], load[1], load[0]}
	// Update transfers in-cell stimulus to the core inputs.
	tick("update")
	pi0, pi1 := cells[0], cells[1]
	q0, q1, q2 := cells[2], cells[3], cells[4]
	// Capture with shift off.
	sim.Set("shift", false)
	sim.Set("se", false)
	tick("wrck")
	// Expected capture: f0<=pi0, f1<=q0, f2<=pi1^q1; out-cells capture
	// core POs computed from pre-capture state: po0=q2, po1=q0&&pi1.
	want := []bool{q0 && pi1, q2, pi1 != q1, q0, pi0}
	// Unload order from wso: ob1, ob0, f2, f1, f0 (then in-cells).
	sim.Set("shift", true)
	sim.Set("se", true)
	var got []bool
	for i := 0; i < 5; i++ {
		if err := sim.Settle(); err != nil {
			t.Fatal(err)
		}
		got = append(got, sim.Get("wso"))
		sim.Set("wsi", false)
		tick("wrck")
	}
	// got[0] is ob1's pre-shift content... the first observed bit is the
	// value sitting in ob1 after capture.
	// want order: [ob1, ob0, f2, f1, f0].
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("unload bit %d = %v, want %v (got %v, want %v)", i, got[i], want[i], got, want)
		}
	}
}

func TestGenerateWrapperAreaAndCellCount(t *testing.T) {
	d := netlist.NewDesign("d", nil)
	core := &testinfo.Core{
		Name: "MID", Clocks: []string{"ck"}, ScanEnables: []string{"se"},
		PIs: 25, POs: 40,
		ScanChains: []testinfo.ScanChain{
			{Name: "c0", Length: 57, In: "si0", Out: "so0", Clock: "ck"},
			{Name: "c1", Length: 56, In: "si1", Out: "so1", Clock: "ck"},
		},
		Patterns: []testinfo.PatternSet{{Name: "s", Type: testinfo.Scan, Count: 9, Seed: 1}},
	}
	plan, err := DesignChains(core, 2, LPT)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := Generate(d, core, plan)
	if err != nil {
		t.Fatal(err)
	}
	if gen.WBRCells != 65 {
		t.Fatalf("WBR cells = %d, want 65", gen.WBRCells)
	}
	// Wrapper gates are dominated by 65 cells x 26 gates.
	if gen.WrapperGates < 65*26 {
		t.Fatalf("wrapper gates = %v, want >= %d", gen.WrapperGates, 65*26)
	}
	if issues := d.Lint(); len(issues) != 0 {
		t.Fatalf("lint: %v", issues)
	}
}

func TestGenerateWrapperErrors(t *testing.T) {
	d := netlist.NewDesign("d", nil)
	core := usbCore()
	plan, err := DesignChains(core, 4, LPT)
	if err != nil {
		t.Fatal(err)
	}
	plan.Core = "other"
	if _, err := Generate(d, core, plan); err == nil {
		t.Fatal("mismatched plan accepted")
	}
	soft := usbCore()
	soft.Soft = true
	softPlan, err := DesignChains(soft, 4, LPT)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(d, soft, softPlan); err == nil {
		t.Fatal("soft plan accepted for structural generation")
	}
}

func TestCoreAreaGates(t *testing.T) {
	small := CoreAreaGates(&testinfo.Core{Name: "s", Clocks: []string{"ck"}, PIs: 4, POs: 4})
	big := CoreAreaGates(usbCore())
	if big <= small {
		t.Fatal("core area model not monotone")
	}
}

// Programming the WIR to BYPASS switches wrapper chain 0's serial path to
// the one-bit WBY register.
func TestWrapperBypassGateLevel(t *testing.T) {
	d := netlist.NewDesign("d", nil)
	core := tinyCore(t, d)
	plan, err := DesignChains(core, 1, LPT)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(d, core, plan); err != nil {
		t.Fatal(err)
	}
	bench := netlist.NewModule("bench")
	for _, p := range []string{"wrck", "shift", "update", "mode", "safe",
		"shiftwir", "updatewir", "se", "wsi"} {
		bench.MustPort(p, netlist.In, 1)
	}
	bench.MustPort("pi", netlist.In, 2)
	bench.MustPort("po", netlist.Out, 2)
	bench.MustPort("wso", netlist.Out, 1)
	bench.MustPort("wirso", netlist.Out, 1)
	bench.MustInstance("u_wrap", "wrap_TINY", map[string]string{
		"pi[0]": "pi[0]", "pi[1]": "pi[1]", "po[0]": "po[0]", "po[1]": "po[1]",
		"wrck": "wrck", "ck": "wrck", "shift": "shift", "update": "update",
		"mode": "mode", "safe": "safe", "shiftwir": "shiftwir",
		"updatewir": "updatewir", "se": "se", "wsi": "wsi", "wso": "wso",
		"wirso": "wirso",
	})
	d.MustAddModule(bench)
	d.Top = "bench"
	sim, err := netlist.NewSimulator(d, "bench")
	if err != nil {
		t.Fatal(err)
	}
	tick := func(net string) {
		t.Helper()
		if err := sim.Tick(net); err != nil {
			t.Fatal(err)
		}
	}
	// Program the WIR with the BYPASS code (3 = q1q0 = 11): shift three 1s
	// through the instruction register, then update.
	sim.Set("shiftwir", true)
	sim.Set("wsi", true)
	for i := 0; i < 3; i++ {
		tick("wrck")
	}
	sim.Set("shiftwir", false)
	tick("updatewir")
	// Now the serial path is the single WBY flop: wsi appears on wso after
	// exactly one WRCK, regardless of the 7-cell boundary chain.
	sim.Set("shift", false)
	sim.Set("se", false)
	for _, bit := range []bool{true, false, true, true, false} {
		sim.Set("wsi", bit)
		tick("wrck")
		if err := sim.Settle(); err != nil {
			t.Fatal(err)
		}
		if sim.Get("wso") != bit {
			t.Fatalf("bypass did not delay wsi by one cycle (bit %v)", bit)
		}
	}
	// Back to INTEST (code 0): the long chain is selected again.
	sim.Set("shiftwir", true)
	sim.Set("wsi", false)
	for i := 0; i < 3; i++ {
		tick("wrck")
	}
	sim.Set("shiftwir", false)
	tick("updatewir")
	if err := sim.Settle(); err != nil {
		t.Fatal(err)
	}
	// With an all-zero chain, wso is 0 even while wsi toggles.
	sim.Set("wsi", true)
	if err := sim.Settle(); err != nil {
		t.Fatal(err)
	}
	if sim.Get("wso") {
		t.Fatal("INTEST path not restored after bypass")
	}
}
