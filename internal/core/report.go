package core

import (
	"fmt"
	"strings"

	"steac/internal/report"
	"steac/internal/sched"
	"steac/internal/testinfo"
)

// Table1 renders the cores' test information the way the paper's Table 1
// does.
func Table1(cores []*testinfo.Core) string {
	t := report.NewTable("Table 1: Test information of the cores",
		"Core", "TI", "TO", "PI", "PO", "Scan chains (lengths)", "Patterns (type)")
	for _, c := range cores {
		chains := "No scan"
		if c.HasScan() {
			ls := make([]string, len(c.ScanChains))
			for i, ch := range c.ScanChains {
				ls[i] = report.Comma(ch.Length)
			}
			chains = fmt.Sprintf("%d (%s)", len(c.ScanChains), strings.Join(ls, ", "))
		}
		var pats []string
		for _, p := range c.Patterns {
			pats = append(pats, fmt.Sprintf("%s (%s)", report.Comma(p.Count), p.Type))
		}
		t.Row(c.Name, c.TestInputs(), c.TestOutputs(), c.PIs, c.POs,
			chains, strings.Join(pats, " + "))
	}
	return t.String()
}

// ScheduleReport renders one schedule: sessions, resource use, totals.
func ScheduleReport(s *sched.Schedule) string {
	var sb strings.Builder
	t := report.NewTable(fmt.Sprintf("Schedule (%s)", s.Kind),
		"Session", "Test", "Start", "Cycles", "TAM", "FuncPins")
	for _, sess := range s.Sessions {
		for _, p := range sess.Placements {
			tam := ""
			if p.Width > 0 {
				tam = fmt.Sprintf("%d wires", p.Width)
			}
			fp := ""
			if p.FuncPins > 0 {
				fp = fmt.Sprintf("%d", p.FuncPins)
			}
			t.Row(sess.Index+1, p.Test.ID, report.Comma(p.Start), report.Comma(p.Cycles), tam, fp)
		}
	}
	sb.WriteString(t.String())
	ts := report.NewTable("Sessions", "Session", "Cycles", "CtrlPins", "DataPins", "PeakPower")
	for _, sess := range s.Sessions {
		ts.Row(sess.Index+1, report.Comma(sess.Cycles), sess.ControlPins, sess.DataPins,
			fmt.Sprintf("%.1f", sess.PeakPower))
	}
	sb.WriteString(ts.String())
	fmt.Fprintf(&sb, "total test time: %s cycles (%.2f ms @ 50 MHz tester clock)\n",
		report.Comma(s.TotalCycles), s.TimeMS(50))
	return sb.String()
}

// ComparisonReport renders the paper's scheduling comparison.
func ComparisonReport(r *FlowResult) string {
	t := report.NewTable("Test scheduling comparison (paper: 4,371,194 vs 4,713,935 cycles)",
		"Approach", "Sessions", "Total cycles", "Ctrl pins (max)")
	t.Row("session-based", len(r.Schedule.Sessions), report.Comma(r.Schedule.TotalCycles), r.Schedule.ControlPinsMax)
	t.Row("non-session-based", "-", report.Comma(r.NonSession.TotalCycles), r.NonSession.ControlPinsMax)
	t.Row("serial", len(r.Serial.Sessions), report.Comma(r.Serial.TotalCycles), r.Serial.ControlPinsMax)
	var sb strings.Builder
	sb.WriteString(t.String())
	if r.Schedule.TotalCycles > 0 {
		gain := 100 * float64(r.NonSession.TotalCycles-r.Schedule.TotalCycles) /
			float64(r.NonSession.TotalCycles)
		fmt.Fprintf(&sb, "session-based saves %.1f%% over non-session-based (paper: 7.3%%)\n", gain)
	}
	return sb.String()
}

// IOReport renders the test-IO analysis of §3.
func IOReport(cores []*testinfo.Core) string {
	s := testinfo.ShareControlIOs(cores)
	t := report.NewTable("Test control IOs (paper: 19 dedicated for the three cores)",
		"Signal class", "Dedicated", "Shared")
	se := 0
	if s.ScanEnables > 0 {
		se = 1
	}
	t.Row("clocks", s.Clocks, s.Clocks)
	t.Row("resets", s.Resets, s.Resets)
	t.Row("scan enables", s.ScanEnables, se)
	t.Row("test enables", s.TestEnables, s.EncodedTEBit)
	t.Row("total", s.Dedicated, s.SharedTotal)
	return t.String()
}

// AreaReport renders the hardware-cost table of §3.
func AreaReport(r *FlowResult) string {
	if r.Insertion == nil {
		return "no insertion result\n"
	}
	ins := r.Insertion
	t := report.NewTable("DFT hardware (paper: WBR cell 26 gates, controller ~371, TAM mux ~132, overhead ~0.3%)",
		"Block", "NAND2 gates")
	t.Row("WBR cell (each)", 26)
	t.Row(fmt.Sprintf("wrappers total (%d cells)", ins.WBRCells), fmt.Sprintf("%.0f", ins.WrapperGates))
	t.Row("test controller", fmt.Sprintf("%.0f", ins.ControllerGates))
	t.Row("TAM multiplexer", fmt.Sprintf("%.0f", ins.TAMGates))
	t.Row("memory BIST (logic)", fmt.Sprintf("%.0f", ins.BISTGates))
	t.Row("chip logic", fmt.Sprintf("%.0f", ins.ChipLogicGates))
	var sb strings.Builder
	sb.WriteString(t.String())
	fmt.Fprintf(&sb, "controller+TAM overhead: %.2f%% of chip logic (paper: ~0.3%%)\n", ins.OverheadPct)
	fmt.Fprintf(&sb, "insertion wall time: %s (paper: 5 minutes on a SUN Blade 1000)\n", ins.Elapsed)
	return sb.String()
}

// TimelineReport renders an ASCII Gantt view of a schedule: one bar per
// placement, scaled to the schedule's total length, so the session
// structure (parallel tests, BIST fill, idle slack) is visible at a glance.
func TimelineReport(s *sched.Schedule, width int) string {
	if width < 20 {
		width = 64
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Timeline (%s, %s cycles total; each column ≈ %s cycles)\n",
		s.Kind, report.Comma(s.TotalCycles), report.Comma((s.TotalCycles+width-1)/width))
	if s.TotalCycles == 0 {
		return sb.String()
	}
	scale := func(c int) int { return c * width / s.TotalCycles }
	label := func(id string) string {
		if len(id) > 14 {
			return id[:14]
		}
		return id
	}
	offset := 0
	for _, sess := range s.Sessions {
		fmt.Fprintf(&sb, "session %d (%s cycles)\n", sess.Index+1, report.Comma(sess.Cycles))
		for _, p := range sess.Placements {
			start := scale(offset + p.Start)
			bar := scale(p.Cycles)
			if bar < 1 {
				bar = 1
			}
			if start+bar > width {
				bar = width - start
			}
			fmt.Fprintf(&sb, "  %-14s |%s%s%s|\n", label(p.Test.ID),
				strings.Repeat(" ", start),
				strings.Repeat("#", bar),
				strings.Repeat(" ", width-start-bar))
		}
		offset += sess.Cycles
	}
	return sb.String()
}
