package memfault

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"steac/internal/march"
	"steac/internal/memory"
)

// cancelBudget is the promptness contract from DESIGN.md: once ctx fires, a
// coverage campaign must unwind within a quarter second even though the
// full run takes tens of seconds.
const cancelBudget = 250 * time.Millisecond

// TestCoverageContextCancel aborts a large campaign mid-flight and checks
// the cancellation contract: prompt return, ctx.Err() surfaced with the
// stage name, no partial Campaign.
func TestCoverageContextCancel(t *testing.T) {
	// Sized so that even the word-packed engine (64 faults per trace
	// replay) needs seconds for a full run — the campaign must still be
	// mid-flight when the cancel fires 50ms in.
	cfg := memory.Config{Name: "big", Words: 2048, Bits: 8}
	faults := AllFaults(cfg) // ~440k faults
	alg := march.MarchLR()

	for _, workers := range []int{1, 4} {
		t.Run(map[int]string{1: "serial", 4: "parallel"}[workers], func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			type result struct {
				camp Campaign
				err  error
			}
			done := make(chan result, 1)
			go func() {
				camp, err := CoverageContext(ctx, alg, cfg, faults, Options{Workers: workers})
				done <- result{camp, err}
			}()

			time.Sleep(50 * time.Millisecond) // let the campaign get going
			cancel()
			deadline := time.Now().Add(cancelBudget)

			select {
			case res := <-done:
				if time.Now().After(deadline) {
					t.Errorf("campaign returned later than %v after cancel", cancelBudget)
				}
				if !errors.Is(res.err, context.Canceled) {
					t.Fatalf("err = %v, want context.Canceled in the chain", res.err)
				}
				if !strings.Contains(res.err.Error(), "memfault") {
					t.Errorf("err %q does not name the memfault stage", res.err)
				}
				if res.camp.Total != 0 || res.camp.Detected != 0 {
					t.Errorf("canceled campaign returned partial results: %+v", res.camp)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("campaign did not return after cancel")
			}
		})
	}
}

// TestCoverageContextPreCanceled checks the fast path: an already-canceled
// context never starts simulating.
func TestCoverageContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := memory.Config{Name: "w16x4", Words: 16, Bits: 4}
	_, err := CoverageContext(ctx, march.MarchCMinus(), cfg, AllFaults(cfg), Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
}
