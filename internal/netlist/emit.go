package netlist

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// EmitVerilog writes a structural Verilog view of the whole design, top
// module last (compilation order), to w.
func (d *Design) EmitVerilog(w io.Writer) error {
	names := d.ModuleNames()
	// Emit non-top modules first, then top.
	ordered := make([]string, 0, len(names))
	for _, n := range names {
		if n != d.Top {
			ordered = append(ordered, n)
		}
	}
	if d.Top != "" {
		ordered = append(ordered, d.Top)
	}
	for _, n := range ordered {
		if err := d.emitModule(w, d.Modules[n]); err != nil {
			return err
		}
	}
	return nil
}

// vname renders a net/instance/formal name as a Verilog identifier: plain
// names pass through, anything with characters outside [A-Za-z0-9_$] (bus
// bits of formals, hierarchical junctions) becomes an escaped identifier
// ("\name " with the mandatory trailing space), which the parser in this
// package reads back verbatim — emission round-trips.
func vname(name string) string {
	plain := true
	for i := 0; i < len(name); i++ {
		c := name[i]
		if !(c == '_' || c == '$' || (c >= '0' && c <= '9') ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')) {
			plain = false
			break
		}
	}
	if plain && len(name) > 0 && !(name[0] >= '0' && name[0] <= '9') {
		return name
	}
	return "\\" + name + " "
}

func (d *Design) emitModule(w io.Writer, m *Module) error {
	portNames := make([]string, len(m.Ports))
	for i, p := range m.Ports {
		portNames[i] = vname(p.Name)
	}
	if m.Behavioral {
		if _, err := fmt.Fprintf(w, "// behavioral IP block, %0.f NAND2-equivalent gates\nmodule %s(%s);\n",
			m.AreaOverride, vname(m.Name), strings.Join(portNames, ", ")); err != nil {
			return err
		}
	} else {
		if _, err := fmt.Fprintf(w, "module %s(%s);\n", vname(m.Name), strings.Join(portNames, ", ")); err != nil {
			return err
		}
	}
	for _, p := range m.Ports {
		if p.Width > 1 {
			fmt.Fprintf(w, "  %s [%d:0] %s;\n", p.Dir, p.Width-1, vname(p.Name))
		} else {
			fmt.Fprintf(w, "  %s %s;\n", p.Dir, vname(p.Name))
		}
	}
	// Internal wires (anything not backing a port bit).
	portBit := make(map[string]bool)
	for _, p := range m.Ports {
		for _, b := range p.Bits() {
			portBit[b] = true
		}
	}
	wires := make([]string, 0, len(m.Nets))
	for n := range m.Nets {
		if !portBit[n] {
			wires = append(wires, n)
		}
	}
	sort.Strings(wires)
	for _, n := range wires {
		fmt.Fprintf(w, "  wire %s;\n", vname(n))
	}
	for _, inst := range m.Instances {
		formals := make([]string, 0, len(inst.Conns))
		for f := range inst.Conns {
			formals = append(formals, f)
		}
		sort.Strings(formals)
		conns := make([]string, len(formals))
		for i, f := range formals {
			actual := inst.Conns[f]
			if !portBit[actual] {
				actual = vname(actual)
			}
			conns[i] = fmt.Sprintf(".%s(%s)", vname(f), actual)
		}
		fmt.Fprintf(w, "  %s %s (%s);\n", inst.Of, vname(inst.Name), strings.Join(conns, ", "))
	}
	_, err := fmt.Fprintf(w, "endmodule\n\n")
	return err
}

// EmitVerilogString renders the design to a string; it is a convenience
// wrapper over EmitVerilog for reports and tests.
func (d *Design) EmitVerilogString() (string, error) {
	var sb strings.Builder
	if err := d.EmitVerilog(&sb); err != nil {
		return "", err
	}
	return sb.String(), nil
}
