package catalog

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testRecord(fp, tenant, scenario string, tam, cycles int) Record {
	return Record{
		Fingerprint: fp, Tenant: tenant, Kind: KindSched,
		Scenario: scenario, Seed: 1,
		Config:        Config{TamWidth: tam, Partitioner: "lpt", Algorithm: "March C-"},
		Features:      Features{Cores: 3, ScanBits: 1000, Memories: 4, MemoryBits: 4096},
		Metrics:       Metrics{TestCycles: cycles, Sessions: 2},
		CreatedUnixMS: 1700000000000,
		Result:        json.RawMessage(`{"cycles":` + "1" + `}`),
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	a := testRecord("aaa1", "anon", "manycore", 24, 500)
	b := testRecord("bbb2", "anon", "memory-heavy", 32, 900)
	if err := st.Put(a); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(b); err != nil {
		t.Fatal(err)
	}
	// Overwrite: last write wins per (tenant, fingerprint).
	a2 := a
	a2.Metrics.TestCycles = 450
	if err := st.Put(a2); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 2 {
		t.Fatalf("Len = %d, want 2", st.Len())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Dropped() != 0 {
		t.Fatalf("clean reopen dropped %d records", st2.Dropped())
	}
	got, ok := st2.Get("anon", "aaa1")
	if !ok || got.Metrics.TestCycles != 450 {
		t.Fatalf("Get after reopen = %+v, %v (want last write, cycles 450)", got, ok)
	}
	// Byte-identity across the reopen: the stored record re-marshals to
	// exactly the acknowledged bytes.
	want := a2
	want.Schema = SchemaVersion
	wantBlob, _ := json.Marshal(want)
	gotBlob, _ := json.Marshal(got)
	if string(gotBlob) != string(wantBlob) {
		t.Fatalf("record bytes changed across reopen:\n got %s\nwant %s", gotBlob, wantBlob)
	}
}

func TestStoreListFiltersAndOrder(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	mf := testRecord("ccc3", "a", "manycore", 16, 700)
	mf.Kind = KindMemfault
	mf.Metrics.Coverage = 98.5
	for _, rec := range []Record{
		testRecord("bbb2", "a", "manycore", 32, 900),
		testRecord("aaa1", "a", "manycore", 24, 500),
		mf,
		testRecord("ddd4", "b", "manycore", 24, 500),
	} {
		if err := st.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	recs := st.List(Query{Tenant: "a"})
	if len(recs) != 3 {
		t.Fatalf("tenant-a list = %d records, want 3", len(recs))
	}
	// Canonical order: kind then TAM width within one scenario/seed.
	if recs[0].Kind != KindMemfault || recs[1].Config.TamWidth != 24 || recs[2].Config.TamWidth != 32 {
		t.Fatalf("order wrong: %+v", recs)
	}
	if got := st.List(Query{Tenant: "a", Kind: KindMemfault}); len(got) != 1 || got[0].Fingerprint != "ccc3" {
		t.Fatalf("kind filter = %+v", got)
	}
	if got := st.List(Query{Tenant: "a", MinCoverage: 90}); len(got) != 1 {
		t.Fatalf("coverage filter = %+v", got)
	}
	if got := st.List(Query{Tenant: "a", Limit: 2}); len(got) != 2 {
		t.Fatalf("limit = %d records", len(got))
	}
}

func TestStoreTornTailDropped(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(testRecord("aaa1", "anon", "manycore", 24, 500)); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(testRecord("bbb2", "anon", "manycore", 32, 900)); err != nil {
		t.Fatal(err)
	}
	st.Close()

	path := filepath.Join(dir, storeFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final append: drop the last 10 bytes.
	if err := os.WriteFile(path, raw[:len(raw)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir)
	if err != nil {
		t.Fatalf("torn tail must repair, not fail: %v", err)
	}
	defer st2.Close()
	if st2.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", st2.Dropped())
	}
	if _, ok := st2.Get("anon", "aaa1"); !ok {
		t.Fatal("survivor lost")
	}
	if _, ok := st2.Get("anon", "bbb2"); ok {
		t.Fatal("torn record resurrected")
	}
	// The repair compacts: a third reopen is clean.
	st2.Close()
	st3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if st3.Dropped() != 0 {
		t.Fatalf("post-repair reopen dropped %d", st3.Dropped())
	}
}

func TestStoreInteriorCorruptionIsTyped(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, fp := range []string{"aaa1", "bbb2", "ccc3"} {
		if err := st.Put(testRecord(fp, "anon", "manycore", 24, 500)); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	path := filepath.Join(dir, storeFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit in the first line's record payload.
	idx := strings.Index(string(raw), "manycore")
	raw[idx] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrCatalogCorrupt) {
		t.Fatalf("interior damage = %v, want ErrCatalogCorrupt", err)
	}
}

func TestStoreRejectsForeignSchema(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(testRecord("aaa1", "anon", "manycore", 24, 500)); err != nil {
		t.Fatal(err)
	}
	st.Close()

	path := filepath.Join(dir, storeFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A well-formed line from a future schema: valid CRC, unknown version.
	future := strings.Replace(string(raw), SchemaVersion, "steac-catalog/v9", 1)
	future = recrc(t, future)
	if err := os.WriteFile(path, []byte(future), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrCatalogSchema) {
		t.Fatalf("foreign schema = %v, want ErrCatalogSchema", err)
	}
}

// recrc recomputes the CRC of every line so a deliberately edited record
// still passes the frame check and exercises the layer under test.
func recrc(t *testing.T, file string) string {
	t.Helper()
	var out []string
	for _, line := range strings.Split(strings.TrimSuffix(file, "\n"), "\n") {
		var env envelope
		if err := json.Unmarshal([]byte(line), &env); err != nil {
			t.Fatal(err)
		}
		env.CRC = crcOf(env.Rec)
		blob, err := json.Marshal(env)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, string(blob))
	}
	return strings.Join(out, "\n") + "\n"
}
