package xcheck

import (
	"context"
	"fmt"
	"strings"

	"steac/internal/bist"
	"steac/internal/march"
	"steac/internal/memory"
	"steac/internal/netlist"
	"steac/internal/pattern"
	"steac/internal/testinfo"
	"steac/internal/wrapper"
)

// CampaignSim is the prepared, immutable state of one stuck-at fault
// campaign: the compiled fault-free base netlist, its recorded golden
// trace, and the (possibly sampled) fault list.  DetectAt clones the base
// per fault, so a single CampaignSim is safe to share across any number of
// concurrent workers — it is the unit the sharded campaign runner
// (internal/campaign) executes, and runCampaign fans the same code path
// across its own workers, with Assemble as the single aggregation path;
// that shared path is what makes a sharded, checkpointed campaign
// bit-identical to an in-process one.
type CampaignSim struct {
	name   string
	base   *netlist.CompiledSim
	sites  int
	faults []netlist.SAFault
	golden int
	run    func(ctx context.Context, sim *netlist.CompiledSim) int
	// packedRun simulates up to 63 injected lanes at once on a PackedSim
	// (lane 63 golden) and returns the per-lane first divergent cycle;
	// only lanes in pending are meaningful.  nil means scalar-only.
	packedRun func(ctx context.Context, ps *netlist.PackedSim, pending uint64) []int
}

// Name returns the campaign label.
func (s *CampaignSim) Name() string { return s.name }

// Faults returns how many faults the campaign simulates (after MaxFaults
// sampling).
func (s *CampaignSim) Faults() int { return len(s.faults) }

// Sites returns the full fault universe of the design.
func (s *CampaignSim) Sites() int { return s.sites }

// GoldenCycles returns the fault-free trace length faults are compared
// against.
func (s *CampaignSim) GoldenCycles() int { return s.golden }

// DetectAt simulates fault i on its own clone of the base netlist and
// returns the first tester-visible divergent cycle, or -1 if the fault
// stayed silent.  The outcome depends only on the fault index and the
// prepared golden trace.  A ctx cancellation can abort the underlying
// simulation early; callers must discard the result when ctx has fired.
func (s *CampaignSim) DetectAt(ctx context.Context, i int) int {
	fs := s.base.Clone()
	f := s.faults[i]
	if err := fs.Inject(f.Gate, f.Port, f.Value); err != nil {
		return -1
	}
	return s.run(ctx, fs)
}

// DetectBatch simulates faults [base, base+n) and returns their detection
// cycles (-1 = silent), bit-identical to n DetectAt calls.  When the
// campaign has a packed runner it packs up to PackedBatch faults per
// word-parallel pass — one trip through the gate array simulates 63 fault
// copies plus the golden machine — falling back to per-fault scalar clones
// for single-fault remainders or scalar-only campaigns.  Results must be
// discarded when ctx has fired, like DetectAt.
func (s *CampaignSim) DetectBatch(ctx context.Context, base, n int) []int {
	out := make([]int, n)
	for lo := 0; lo < n; lo += PackedBatch {
		hi := lo + PackedBatch
		if hi > n {
			hi = n
		}
		s.detectBatch(ctx, base+lo, out[lo:hi])
		if ctx.Err() != nil {
			break
		}
	}
	return out
}

func (s *CampaignSim) detectBatch(ctx context.Context, base int, out []int) {
	if s.packedRun == nil || len(out) == 1 {
		for i := range out {
			if ctx.Err() != nil {
				return
			}
			out[i] = s.DetectAt(ctx, base+i)
		}
		return
	}
	ps, err := netlist.NewPackedSim(s.base)
	if err != nil {
		for i := range out {
			out[i] = s.DetectAt(ctx, base+i)
		}
		return
	}
	var pending uint64
	for i := range out {
		f := s.faults[base+i]
		if e := ps.InjectLane(i, f.Gate, f.Port, f.Value); e != nil {
			out[i] = -1 // same verdict DetectAt gives an uninjectable fault
			continue
		}
		pending |= 1 << uint(i)
	}
	det := s.packedRun(ctx, ps, pending)
	for i := range out {
		if pending>>uint(i)&1 == 1 {
			out[i] = det[i]
		}
	}
}

// VerifyPackedScalar replays every sampled fault through both kernels —
// the word-packed batch path and one scalar clone per fault — and returns
// how many faults were compared.  Any lane whose packed detection cycle
// differs from its scalar reference is an error naming the fault; this is
// the differential that keeps the scalar engine authoritative (`dscflow
// -xcheck` runs it across all 25 DSC designs).
func (s *CampaignSim) VerifyPackedScalar(ctx context.Context) (int, error) {
	if s.packedRun == nil {
		return 0, fmt.Errorf("xcheck: %s: campaign has no packed kernel", s.name)
	}
	packed := s.DetectBatch(ctx, 0, len(s.faults))
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	for i := range s.faults {
		if err := ctx.Err(); err != nil {
			return i, err
		}
		if at := s.DetectAt(ctx, i); at != packed[i] {
			return i, fmt.Errorf("xcheck: %s: fault %d (%s): packed detects at cycle %d, scalar at %d",
				s.name, i, s.faults[i], packed[i], at)
		}
	}
	return len(s.faults), nil
}

// Assemble builds the CampaignResult from per-fault detection cycles in
// fault-list order (detectedAt[i] < 0 means fault i stayed silent).  It is
// shared by runCampaign and the sharded campaign runner.  Obs totals are
// published here, once per campaign.
func (s *CampaignSim) Assemble(detectedAt []int, opts Options) CampaignResult {
	res := CampaignResult{Name: s.name, Sites: s.sites, Total: len(s.faults), GoldenCycles: s.golden}
	keep := opts.undetectedCap()
	for i, at := range detectedAt {
		if at >= 0 {
			res.Detected++
			res.Detections = append(res.Detections, FaultDetection{Fault: s.faults[i], Cycle: at})
		} else if keep < 0 || len(res.Undetected) < keep {
			res.Undetected = append(res.Undetected, s.faults[i])
		}
	}
	obsCampFaults.Add(int64(res.Total))
	obsCampDetected.Add(int64(res.Detected))
	return res
}

// NewTPGCampaignSim prepares the sequencer + TPG bench stuck-at campaign:
// it builds and compiles the verify bench for alg over mems, records the
// fault-free DONE/FAIL session trace, and samples the fault universe under
// opts.MaxFaults/Seed.
func NewTPGCampaignSim(name string, alg march.Algorithm, mems []memory.Config, opts Options) (*CampaignSim, error) {
	padded := PadConfigs(mems)
	d, err := bist.BuildVerifyBench(alg, padded)
	if err != nil {
		return nil, err
	}
	base, err := netlist.NewCompiledSim(d, "bench")
	if err != nil {
		return nil, err
	}
	pins := newBenchPins(base, padded)
	golden, _ := runBISTTraced(base, pins, padded, nil)
	all := base.Faults()
	return &CampaignSim{
		name:   name,
		base:   base,
		sites:  len(all),
		faults: sampleFaults(all, opts.MaxFaults, opts.Seed),
		golden: len(golden),
		run: func(_ context.Context, sim *netlist.CompiledSim) int {
			_, at := runBISTTraced(sim, pins, padded, golden)
			return at
		},
		packedRun: func(ctx context.Context, ps *netlist.PackedSim, pending uint64) []int {
			return runBISTPacked(ctx, ps, pins, padded, golden, pending)
		},
	}, nil
}

// NewControllerCampaignSim prepares the shared-controller stuck-at
// campaign: compile the generated controller, record the fault-free
// scripted two-scenario session, sample the fault universe.
func NewControllerCampaignSim(name string, nGroups int, opts Options) (*CampaignSim, error) {
	d := netlist.NewDesign("xctl", nil)
	if _, err := bist.GenerateController(d, "ctl", nGroups); err != nil {
		return nil, err
	}
	base, err := netlist.NewCompiledSim(d, "ctl")
	if err != nil {
		return nil, err
	}
	goIDs := base.BusIDs("GO", nGroups)
	gdoneIDs := base.BusIDs("GDONE", nGroups)
	gfailIDs := base.BusIDs("GFAIL", nGroups)
	outIDs := []int{base.NetID(bist.PinMBO), base.NetID(bist.PinMRD), base.NetID(bist.PinMSO)}
	golden, _ := runControllerTraced(base, nGroups, goIDs, gdoneIDs, gfailIDs, outIDs, nil)
	all := base.Faults()
	return &CampaignSim{
		name:   name,
		base:   base,
		sites:  len(all),
		faults: sampleFaults(all, opts.MaxFaults, opts.Seed),
		golden: len(golden),
		run: func(_ context.Context, sim *netlist.CompiledSim) int {
			_, at := runControllerTraced(sim, nGroups, goIDs, gdoneIDs, gfailIDs, outIDs, golden)
			return at
		},
		packedRun: func(ctx context.Context, ps *netlist.PackedSim, pending uint64) []int {
			return runControllerPacked(ctx, ps, nGroups, goIDs, gdoneIDs, gfailIDs, outIDs, golden, pending)
		},
	}, nil
}

// NewWrapperCampaignSim prepares the wrapper-stack stuck-at campaign:
// build the wrapped structural core, set up the translated scan program,
// and restrict the fault universe to the wrapper logic (core-internal
// faults are the scan patterns' own job).
func NewWrapperCampaignSim(name string, core *testinfo.Core, width int, opts Options) (*CampaignSim, error) {
	d, plan, err := BuildWrapperDesign(core, width, wrapper.LPT)
	if err != nil {
		return nil, err
	}
	base, err := netlist.NewCompiledSim(d, "xtop")
	if err != nil {
		return nil, err
	}
	atpg, err := pattern.NewATPG(core)
	if err != nil {
		return nil, err
	}
	var src pattern.Source = atpg
	if opts.MaxPatterns > 0 && opts.MaxPatterns < atpg.ScanCount() {
		src = &cappedSource{Source: atpg, n: opts.MaxPatterns}
	}
	pins := newWrapPins(base, plan.Width)
	lane := pattern.ScanLane{
		Core: core, Source: src, Plan: plan,
		Cycles: plan.ScanTestCycles(src.ScanCount()),
	}
	layout := pattern.SessionLayout{Cycles: lane.Cycles, Scan: []pattern.ScanLane{lane}}
	prog := &pattern.Program{TamWidth: plan.Width}

	run := func(ctx context.Context, sim *netlist.CompiledSim) int {
		sim.Reset()
		wrapDefaults(sim, core)
		detected := -1
		wirCycles := wirBypassScript(sim, pins, func(cycle int, pin string, got, want bool) bool {
			if got != want && detected < 0 {
				detected = cycle
			}
			return detected < 0
		})
		if detected >= 0 {
			return detected
		}
		_ = streamScan(ctx, sim, prog, layout, core, pins, func(cycle int, pin string, got, want bool) bool {
			if got != want && detected < 0 {
				detected = wirCycles + cycle
			}
			return detected < 0
		})
		return detected
	}

	var faults []netlist.SAFault
	for _, f := range base.Faults() {
		if strings.Contains(f.Gate, "/u_core/") {
			continue
		}
		faults = append(faults, f)
	}
	sites := len(faults)
	return &CampaignSim{
		name:   name,
		base:   base,
		sites:  sites,
		faults: sampleFaults(faults, opts.MaxFaults, opts.Seed),
		golden: wirCyclesFor() + layout.Cycles,
		run:    run,
		packedRun: func(ctx context.Context, ps *netlist.PackedSim, pending uint64) []int {
			return runWrapperPacked(ctx, ps, core, pins, prog, layout, pending)
		},
	}, nil
}
