package main

import (
	"bytes"
	"context"
	"regexp"
	"testing"

	"steac/internal/brains"
	"steac/internal/core"
	"steac/internal/dsc"
	"steac/internal/obs"
)

// durRE matches the rendered wall-time column of the span tree (Go
// duration strings, microsecond-rounded) together with its right-alignment
// padding: the string width varies with the measured time, so the padding
// must be scrubbed with it.  Counter values and call counts are
// deterministic at Workers=1 and stay pinned.
var durRE = regexp.MustCompile(`\s+(?:[0-9]+h)?(?:[0-9]+m)?[0-9]+(?:\.[0-9]+)?(?:ns|µs|ms|s)\b`)

// TestObsReportGolden pins the `dscflow -obs` report for a Workers=1 flow:
// the span taxonomy, which counters fire, and their exact totals.
func TestObsReportGolden(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	obs.Reset()

	soc, err := dsc.BuildSOC()
	if err != nil {
		t.Fatal(err)
	}
	stils, err := core.EmitSTIL(dsc.Cores())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.RunFlowContext(context.Background(), core.FlowInput{
		STIL:        stils,
		SOC:         soc,
		Resources:   dsc.Resources(),
		Memories:    dsc.Memories(),
		BISTOptions: brains.Options{Grouping: brains.GroupPerMemory, Workers: 1},
		Verify:      true,
	}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	obs.WriteReport(&buf)
	scrubbed := durRE.ReplaceAllString(buf.String(), " <dur>")
	checkGolden(t, "obsreport", scrubbed)
}
