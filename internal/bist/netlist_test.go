package bist

import (
	"fmt"
	"testing"

	"steac/internal/march"
	"steac/internal/memory"
	"steac/internal/netlist"
)

// buildSeqTPGBench wires one sequencer and one TPG into a testbench module
// with the RAM left external (the test emulates it cycle by cycle).  It is
// a thin wrapper over the exported BuildVerifyBench, which the xcheck
// subsystem drives the same way.
func buildSeqTPGBench(t *testing.T, alg march.Algorithm, cfg memory.Config) (*netlist.Design, *netlist.Simulator) {
	t.Helper()
	d, err := BuildVerifyBench(alg, []memory.Config{cfg})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := netlist.NewSimulator(d, "bench")
	if err != nil {
		t.Fatal(err)
	}
	return d, sim
}

func busToInt(bits []bool) int {
	v := 0
	for i, b := range bits {
		if b {
			v |= 1 << i
		}
	}
	return v
}

// runGateLevel clocks the bench, emulating a synchronous flow-through RAM
// in Go.  injectSA1 optionally forces a read bit high at one address,
// emulating a stuck-at-1 defect.  It returns the cycle count until DONE and
// the final FAIL flag.
func runGateLevel(t *testing.T, sim *netlist.Simulator, cfg memory.Config, injectSA1 int, maxCycles int) (int, bool) {
	t.Helper()
	mem := make([]uint64, cfg.Words)
	// Reset pulse.
	sim.Set("rst", true)
	sim.Set("en", false)
	if err := sim.Tick("ck"); err != nil {
		t.Fatal(err)
	}
	sim.Set("rst", false)
	sim.Set("en", true)
	for cycle := 0; cycle < maxCycles; cycle++ {
		if err := sim.Settle(); err != nil {
			t.Fatal(err)
		}
		if sim.Get("done") {
			return cycle, sim.Get("fail")
		}
		addr := busToInt(sim.GetBus("addr0", cfg.AddrBits()))
		word := mem[addr]
		if injectSA1 >= 0 && addr == injectSA1 {
			word |= 1
		}
		for b := 0; b < cfg.Bits; b++ {
			sim.Set(fmt.Sprintf("q0[%d]", b), word>>b&1 == 1)
		}
		if err := sim.Settle(); err != nil {
			t.Fatal(err)
		}
		we := sim.Get("we0")
		data := uint64(busToInt(sim.GetBus("d0", cfg.Bits)))
		if err := sim.Tick("ck"); err != nil {
			t.Fatal(err)
		}
		if we {
			mem[addr] = data
		}
	}
	t.Fatalf("DONE never asserted within %d cycles", maxCycles)
	return 0, false
}

func TestGateLevelMarchXFaultFree(t *testing.T) {
	cfg := memory.Config{Name: "r8x2", Words: 8, Bits: 2}
	_, sim := buildSeqTPGBench(t, march.MarchX(), cfg)
	cycles, fail := runGateLevel(t, sim, cfg, -1, 200)
	if fail {
		t.Fatal("fault-free gate-level run raised FAIL")
	}
	// March X is 6N; the gate-level pipeline finishes in exactly 6*8 cycles.
	if want := 6 * 8; cycles != want {
		t.Fatalf("gate-level cycles = %d, want %d", cycles, want)
	}
}

func TestGateLevelMarchXDetectsStuckAt(t *testing.T) {
	cfg := memory.Config{Name: "r8x2", Words: 8, Bits: 2}
	_, sim := buildSeqTPGBench(t, march.MarchX(), cfg)
	_, fail := runGateLevel(t, sim, cfg, 3, 200)
	if !fail {
		t.Fatal("gate-level BIST missed stuck-at-1 at address 3")
	}
}

func TestGateLevelMatchesEngineCycleCount(t *testing.T) {
	// Cross-check the generated hardware against the behavioural engine
	// for a second algorithm and geometry.
	cfg := memory.Config{Name: "r16x4", Words: 16, Bits: 4}
	_, sim := buildSeqTPGBench(t, march.MATSPlus(), cfg)
	cycles, fail := runGateLevel(t, sim, cfg, -1, 400)
	if fail {
		t.Fatal("fault-free run failed")
	}
	m, err := memory.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine([]Group{{Name: "g", Alg: march.MATSPlus(),
		Mems: []MemoryUnderTest{{RAM: m}}}}, Serial)
	if err != nil {
		t.Fatal(err)
	}
	if res := e.Run(); res.Cycles != cycles {
		t.Fatalf("engine %d cycles, gate level %d", res.Cycles, cycles)
	}
}

func TestGateLevelController(t *testing.T) {
	d := netlist.NewDesign("d", nil)
	if _, err := GenerateController(d, "ctl", 2); err != nil {
		t.Fatal(err)
	}
	if issues := d.Lint(); len(issues) != 0 {
		t.Fatalf("controller lint: %v", issues)
	}
	sim, err := netlist.NewSimulator(d, "ctl")
	if err != nil {
		t.Fatal(err)
	}
	tick := func() {
		t.Helper()
		if err := sim.Tick(PinMBC); err != nil {
			t.Fatal(err)
		}
	}
	// Reset, then start.
	sim.Set(PinMBR, true)
	tick()
	sim.Set(PinMBR, false)
	sim.Set(PinMBS, true)
	tick()
	sim.Set(PinMBS, false)
	if err := sim.Settle(); err != nil {
		t.Fatal(err)
	}
	if !sim.Get("GO[0]") || sim.Get("GO[1]") {
		t.Fatalf("after start: GO = %v,%v, want 1,0", sim.Get("GO[0]"), sim.Get("GO[1]"))
	}
	// Group 0 finishes clean.
	sim.Set("GDONE[0]", true)
	tick()
	sim.Set("GDONE[0]", false)
	if err := sim.Settle(); err != nil {
		t.Fatal(err)
	}
	if sim.Get("GO[0]") || !sim.Get("GO[1]") {
		t.Fatal("controller did not advance to group 1")
	}
	// Group 1 reports a failure, then finishes.
	sim.Set("GFAIL[1]", true)
	tick()
	sim.Set("GFAIL[1]", false)
	sim.Set("GDONE[1]", true)
	tick()
	sim.Set("GDONE[1]", false)
	if err := sim.Settle(); err != nil {
		t.Fatal(err)
	}
	if !sim.Get(PinMBO) {
		t.Fatal("MBO not asserted after last group")
	}
	if sim.Get(PinMRD) {
		t.Fatal("MRD reports pass despite group-1 failure")
	}
	if sim.Get("GO[0]") || sim.Get("GO[1]") {
		t.Fatal("GO still active after BIST over")
	}
}

func TestGenerateBISTAssembly(t *testing.T) {
	d := netlist.NewDesign("soc", nil)
	groups := []GroupSpec{
		{Name: "sp", Alg: march.MarchCMinus(), Mems: []memory.Config{
			{Name: "m0", Words: 256, Bits: 8},
			{Name: "m1", Words: 512, Bits: 16},
		}},
		{Name: "tp", Alg: march.MarchCMinus(), Mems: []memory.Config{
			{Name: "m2", Words: 128, Bits: 32, Kind: memory.TwoPort},
		}},
	}
	top, report, err := GenerateBIST(d, "membist", groups)
	if err != nil {
		t.Fatal(err)
	}
	if issues := d.Lint(); len(issues) != 0 {
		t.Fatalf("assembly lint: %v", issues)
	}
	if report.Controller <= 0 || report.Sequencers <= 0 || report.TPGs <= 0 {
		t.Fatalf("area report has empty entries: %+v", report)
	}
	if report.Total() != report.Controller+report.Sequencers+report.TPGs {
		t.Fatal("area total mismatch")
	}
	if top.Name != "membist" {
		t.Fatalf("top name %s", top.Name)
	}
	v, err := d.EmitVerilogString()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"module membist", "membist_ctl", "membist_tpg_m2", "ram_m0"} {
		if !contains(v, want) {
			t.Fatalf("emitted verilog missing %q", want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

func TestGenerateBISTErrors(t *testing.T) {
	d := netlist.NewDesign("soc", nil)
	if _, _, err := GenerateBIST(d, "b", nil); err == nil {
		t.Fatal("no groups accepted")
	}
	if _, _, err := GenerateBIST(d, "b2", []GroupSpec{{Name: "g", Alg: march.MSCAN()}}); err == nil {
		t.Fatal("empty group accepted")
	}
	if _, err := GenerateController(d, "c0", 0); err == nil {
		t.Fatal("0-group controller accepted")
	}
	if _, err := GenerateTPG(d, "t0", memory.Config{Name: "bad", Words: 0, Bits: 0}); err == nil {
		t.Fatal("bad memory config accepted")
	}
	if _, err := GenerateSequencer(d, "s0", march.Algorithm{Name: "empty"}); err == nil {
		t.Fatal("empty algorithm accepted")
	}
}

func TestTPGAreaScalesWithGeometry(t *testing.T) {
	d := netlist.NewDesign("a", nil)
	small, err := GenerateTPG(d, "tpg_small", memory.Config{Name: "s", Words: 64, Bits: 4})
	if err != nil {
		t.Fatal(err)
	}
	big, err := GenerateTPG(d, "tpg_big", memory.Config{Name: "b", Words: 8192, Bits: 32})
	if err != nil {
		t.Fatal(err)
	}
	as, err := d.Area(small.Name)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := d.Area(big.Name)
	if err != nil {
		t.Fatal(err)
	}
	if ab <= as {
		t.Fatalf("TPG area does not scale: %v vs %v", as, ab)
	}
}

// Every catalog algorithm's generated hardware finishes in exactly the
// cycle count the behavioural engine predicts (full conformance sweep).
func TestGateLevelCatalogConformance(t *testing.T) {
	cfg := memory.Config{Name: "r8x2", Words: 8, Bits: 2}
	for _, alg := range march.Catalog() {
		_, sim := buildSeqTPGBench(t, alg, cfg)
		cycles, fail := runGateLevel(t, sim, cfg, -1, 2000)
		if fail {
			t.Fatalf("%s: fault-free gate-level run failed", alg.Name)
		}
		if want := alg.Complexity() * cfg.Words; cycles != want {
			t.Fatalf("%s: gate level %d cycles, want %d", alg.Name, cycles, want)
		}
	}
}
