package xcheck

import (
	"context"
	"testing"

	"steac/internal/memory"
)

// assertBatchMatchesScalar runs every fault of sim both ways — word-packed
// DetectBatch and per-fault scalar DetectAt — and requires bit-identical
// detection cycles, not just verdicts.
func assertBatchMatchesScalar(t *testing.T, sim *CampaignSim) {
	t.Helper()
	ctx := context.Background()
	n := sim.Faults()
	if n == 0 {
		t.Fatal("empty fault list")
	}
	batch := sim.DetectBatch(ctx, 0, n)
	for i := 0; i < n; i++ {
		if sc := sim.DetectAt(ctx, i); sc != batch[i] {
			t.Fatalf("%s fault %d: packed=%d scalar=%d", sim.Name(), i, batch[i], sc)
		}
	}
	// Arbitrary base offsets and sub-word remainders must agree with the
	// full run (batch boundaries are not semantic).
	if n > 10 {
		off := sim.DetectBatch(ctx, 5, 9)
		for i, at := range off {
			if at != batch[5+i] {
				t.Fatalf("%s offset batch fault %d: %d vs %d", sim.Name(), 5+i, at, batch[5+i])
			}
		}
	}
}

func TestPackedTPGBatchMatchesScalar(t *testing.T) {
	alg := mustAlg(t, "March X")
	mems := []memory.Config{{Name: "m0", Words: 8, Bits: 2, Kind: memory.SinglePort}}
	sim, err := NewTPGCampaignSim("tpg", alg, mems, Options{MaxFaults: 70})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Faults() != 70 { // 63-lane word + 7-fault remainder
		t.Fatalf("want 70 sampled faults, got %d", sim.Faults())
	}
	assertBatchMatchesScalar(t, sim)
}

func TestPackedTPGBatchMatchesScalarTwoPort(t *testing.T) {
	alg := mustAlg(t, "March Y")
	mems := []memory.Config{
		{Name: "a", Words: 8, Bits: 2, Kind: memory.TwoPort},
		{Name: "b", Words: 8, Bits: 3, Kind: memory.SinglePort},
	}
	sim, err := NewTPGCampaignSim("tpg2p", alg, mems, Options{MaxFaults: 66})
	if err != nil {
		t.Fatal(err)
	}
	assertBatchMatchesScalar(t, sim)
}

func TestPackedControllerBatchMatchesScalar(t *testing.T) {
	sim, err := NewControllerCampaignSim("ctl", 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertBatchMatchesScalar(t, sim)
}

func TestPackedWrapperBatchMatchesScalar(t *testing.T) {
	core := xcheckCore("wpk", 4, 5, []int{7, 5}, 3, 99)
	sim, err := NewWrapperCampaignSim("wrap", core, 2, Options{MaxFaults: 70, MaxPatterns: 2})
	if err != nil {
		t.Fatal(err)
	}
	assertBatchMatchesScalar(t, sim)
}
