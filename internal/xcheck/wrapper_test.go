package xcheck

import (
	"context"
	"fmt"
	"testing"

	"steac/internal/testinfo"
)

// xcheckCore fabricates a hard scan core with ATPG pattern metadata.
func xcheckCore(name string, pis, pos int, chains []int, patterns int, seed int64) *testinfo.Core {
	c := &testinfo.Core{
		Name:        name,
		Clocks:      []string{"clk"},
		Resets:      []string{"rstn"},
		ScanEnables: []string{"se"},
		PIs:         pis,
		POs:         pos,
		Patterns: []testinfo.PatternSet{
			{Name: "stuck", Type: testinfo.Scan, Count: patterns, Seed: seed},
		},
	}
	for i, l := range chains {
		c.ScanChains = append(c.ScanChains, testinfo.ScanChain{
			Name: fmt.Sprintf("c%d", i), Length: l,
			In: fmt.Sprintf("si%d", i), Out: fmt.Sprintf("so%d", i), Clock: "clk",
		})
	}
	return c
}

func TestVerifyWrapperEquivalence(t *testing.T) {
	cases := []struct {
		core  *testinfo.Core
		width int
	}{
		{xcheckCore("wmix", 5, 7, []int{9, 6, 13}, 4, 11), 2},
		{xcheckCore("wone", 3, 3, []int{8}, 3, 22), 1},
		{xcheckCore("wwide", 8, 4, []int{5, 5, 5, 5}, 3, 33), 3},
	}
	for _, tc := range cases {
		t.Run(tc.core.Name, func(t *testing.T) {
			res, atpg, err := VerifyWrapperContext(context.Background(), tc.core.Name, tc.core, tc.width, Options{})
			if err != nil {
				t.Fatalf("VerifyWrapper: %v", err)
			}
			for _, m := range res.Mismatches {
				t.Errorf("mismatch: %s", m)
			}
			for _, n := range res.Notes {
				t.Errorf("note: %s", n)
			}
			if !res.Pass {
				t.Fatalf("not equivalent: %s", res.String())
			}
			if res.Sessions != 2 || res.Checks == 0 {
				t.Errorf("sessions=%d checks=%d", res.Sessions, res.Checks)
			}
			if atpg.ScanCount() == 0 {
				t.Error("no scan patterns streamed")
			}
		})
	}
}
