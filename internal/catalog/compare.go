package catalog

import (
	"fmt"
	"strconv"

	"steac/internal/report"
)

// CompareRecords builds the tradeoff table over a record set: test time
// vs TAM width vs coverage vs power, one row per record in canonical
// order.  Cells are pre-rendered strings (report.Compare's contract) and
// contain no timestamps, durations, or absolute paths, so the same record
// population always renders byte-identical tables — they are golden-file
// material.
func CompareRecords(recs []Record) *report.Compare {
	recs = append([]Record(nil), recs...)
	SortRecords(recs)
	c := report.NewCompare(
		fmt.Sprintf("steac catalog compare (%d records)", len(recs)),
		"fingerprint", "kind", "scenario", "seed", "tam_width", "partitioner",
		"algorithm", "grouping", "lbist", "power_budget",
		"test_cycles", "sessions", "peak_power", "coverage%", "faults", "detected", "status",
	)
	for _, rec := range recs {
		status := "ok"
		if rec.Metrics.Infeasible {
			status = "infeasible"
		}
		c.AddRow(
			shortFingerprint(rec.Fingerprint),
			rec.Kind,
			rec.Scenario,
			cellInt(int(rec.Seed)),
			cellInt(rec.Config.TamWidth),
			rec.Config.Partitioner,
			rec.Config.Algorithm,
			rec.Config.Grouping,
			cellBool(rec.Config.LogicBIST),
			cellFloat(rec.Config.PowerBudget),
			cellInt(rec.Metrics.TestCycles),
			cellInt(rec.Metrics.Sessions),
			cellFloat(rec.Metrics.PeakPower),
			cellFloat(rec.Metrics.Coverage),
			cellInt(rec.Metrics.Faults),
			cellInt(rec.Metrics.Detected),
			status,
		)
	}
	return c
}

// shortFingerprint abbreviates content addresses the way job logs do.
func shortFingerprint(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	return fp
}

// cellInt renders zero as empty: a compare table distinguishes "not
// measured" from a measured zero, and none of these metrics are
// legitimately zero when present.
func cellInt(v int) string {
	if v == 0 {
		return ""
	}
	return strconv.Itoa(v)
}

func cellFloat(v float64) string {
	if v == 0 {
		return ""
	}
	return report.Float(v)
}

func cellBool(v bool) string {
	if v {
		return "yes"
	}
	return ""
}
