// Package catalog is the durable results catalog behind steacd: every
// completed flow, scheduling sweep, and fault campaign becomes one
// content-addressed Record keyed by the same SHA-256 fingerprints the
// daemon already uses for its memo cache and job ids.  Records accumulate
// in an fsync'd JSONL store under -catalog-dir (Store, store.go) and feed
// two product surfaces: the compare endpoints (CompareRecords →
// report.Compare, rendered as JSON/CSV/HTML) and the recommender
// (internal/recommend), which answers "what DFT config worked for chips
// like this one" from prior records instead of re-running campaigns.
package catalog

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"steac/internal/memory"
	"steac/internal/testinfo"
)

// SchemaVersion stamps every stored record.  The store refuses files
// written by a schema it does not speak — a loud, typed refusal beats
// silently misreading a future layout.
const SchemaVersion = "steac-catalog/v1"

// Record kinds: which engine produced the result.
const (
	KindFlow     = "flow"     // POST /v1/flow — full integration flow
	KindSched    = "sched"    // POST /v1/sched — one sweep point
	KindMemfault = "memfault" // memfault campaign job
	KindXCheck   = "xcheck"   // xcheck campaign job
)

// Record is one cataloged result: the configuration that was tried, the
// chip it was tried on (scenario provenance plus size features), and what
// came out.  Fingerprint is the content address — the serve request key
// for synchronous results, the campaign fingerprint for jobs — so the
// catalog primary key is exactly the key the rest of the system already
// uses.  Records are tenant-scoped like jobs: queries only ever surface a
// tenant's own records.
type Record struct {
	Schema      string `json:"schema"`
	Fingerprint string `json:"fingerprint"`
	Tenant      string `json:"tenant"`
	Kind        string `json:"kind"`
	// Scenario/Seed are the chip's provenance when it came from the
	// scenario registry (empty for explicit STIL/memory submissions).
	Scenario string `json:"scenario,omitempty"`
	Seed     int64  `json:"seed,omitempty"`

	Config   Config   `json:"config"`
	Features Features `json:"features"`
	Metrics  Metrics  `json:"metrics"`

	// CreatedUnixMS is the ingest time.  It never appears in compare
	// output (content-addressed artifacts must not embed wall clocks) but
	// lets operators age out stale populations.
	CreatedUnixMS int64 `json:"created_unix_ms,omitempty"`
	// Result is the verbatim engine response the record summarizes.
	Result json.RawMessage `json:"result,omitempty"`
}

// Config is the DFT configuration under evaluation — the knobs the
// recommender suggests.
type Config struct {
	// TamWidth is the test-pin budget the schedule ran under.
	TamWidth int `json:"tam_width,omitempty"`
	// Partitioner is the wrapper chain-partitioning strategy (lpt,
	// firstfit, optimal).
	Partitioner string `json:"partitioner,omitempty"`
	// Algorithm is the March test programmed into the BIST sequencers.
	Algorithm string `json:"algorithm,omitempty"`
	// Grouping is the sequencer-sharing strategy (by-kind, per-memory,
	// single).
	Grouping string `json:"grouping,omitempty"`
	// LogicBIST marks chips with Bernardi-style hybrid logic BIST
	// sessions.
	LogicBIST bool `json:"logic_bist,omitempty"`
	// PowerBudget is the per-session power envelope (0 = unbounded).
	PowerBudget float64 `json:"power_budget,omitempty"`
}

// Features is the chip-size profile distances are computed over: raw
// counts only, derivable from a testinfo core list plus memory configs, so
// a recommender query can be answered for a chip that has never run.
type Features struct {
	Cores        int `json:"cores"`
	ScanChains   int `json:"scan_chains"`
	ScanBits     int `json:"scan_bits"`
	ScanPatterns int `json:"scan_patterns"`
	FuncPatterns int `json:"func_patterns"`
	IOs          int `json:"ios"`
	Memories     int `json:"memories"`
	MemoryBits   int `json:"memory_bits"`
}

// Metrics is the outcome: what the tradeoff tables plot.
type Metrics struct {
	// TestCycles is total schedule length (flow/sched records).
	TestCycles int `json:"test_cycles,omitempty"`
	// Sessions is the session count of the winning schedule.
	Sessions int `json:"sessions,omitempty"`
	// PeakPower is the highest per-session summed power of the schedule.
	PeakPower float64 `json:"peak_power,omitempty"`
	// Coverage is fault coverage percent (campaign records).
	Coverage float64 `json:"coverage,omitempty"`
	// Faults/Detected are the campaign universe and kill count.
	Faults   int `json:"faults,omitempty"`
	Detected int `json:"detected,omitempty"`
	// Infeasible marks sweep points the scheduler proved unschedulable
	// under their pin budget — negative results are results too.
	Infeasible bool `json:"infeasible,omitempty"`
}

// CoreFeatures profiles a chip description for distance queries and
// record ingest.  It only reads counts, so it works for cores that have
// never been built, wrapped, or scheduled.
func CoreFeatures(cores []*testinfo.Core, mems []memory.Config) Features {
	f := Features{Cores: len(cores), Memories: len(mems)}
	for _, c := range cores {
		f.ScanChains += len(c.ScanChains)
		f.ScanBits += c.TotalScanBits()
		f.ScanPatterns += c.ScanPatternCount()
		f.FuncPatterns += c.FunctionalPatternCount()
		f.IOs += c.PIs + c.POs
	}
	for _, m := range mems {
		f.MemoryBits += m.Words * m.Bits
	}
	return f
}

// SubFingerprint derives a content address for a sub-result of a parent
// fingerprint (one point of a sweep): hex SHA-256 over parent‖":"‖label.
// Deterministic, so re-running the sweep converges on the same records.
func SubFingerprint(parent, label string) string {
	sum := sha256.Sum256([]byte(parent + ":" + label))
	return hex.EncodeToString(sum[:])
}
