// Scheduling sweep: the paper's observation that "parallel testing may not
// be better than serial testing" once the test-IO limit is considered.
// Sweeping the chip's test-pin budget shows where session-based scheduling
// (shared control IOs) beats the non-session packer (dedicated control
// IOs), and where generous pins let the packer catch up.
package main

import (
	"context"
	"fmt"
	"log"

	"steac/internal/brains"
	"steac/internal/core"
	"steac/internal/dsc"
	"steac/internal/report"
	"steac/internal/sched"
)

func main() {
	cores := dsc.Cores()
	b, err := brains.CompileContext(context.Background(), dsc.Memories(), brains.Options{Grouping: brains.GroupPerMemory})
	if err != nil {
		log.Fatal(err)
	}
	tests, err := sched.BuildTests(cores, core.BISTGroups(b))
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable("Test time vs test-pin budget (DSC chip, cycles)",
		"Test pins", "Session-based", "Non-session", "Winner", "Gap%")
	base := dsc.Resources()
	for _, pins := range []int{24, 25, 26, 28, 30, 34, 40, 50} {
		res := base
		res.TestPins = pins
		sb, err := sched.SessionBasedContext(context.Background(), tests, res)
		if err != nil {
			t.Row(pins, "infeasible", "-", "-", "-")
			continue
		}
		nsb, err := sched.NonSessionBased(tests, res)
		if err != nil {
			t.Row(pins, report.Comma(sb.TotalCycles), "infeasible", "session", "-")
			continue
		}
		winner := "session"
		if nsb.TotalCycles < sb.TotalCycles {
			winner = "non-session"
		} else if nsb.TotalCycles == sb.TotalCycles {
			winner = "tie"
		}
		gap := 100 * float64(nsb.TotalCycles-sb.TotalCycles) / float64(nsb.TotalCycles)
		t.Row(pins, report.Comma(sb.TotalCycles), report.Comma(nsb.TotalCycles),
			winner, fmt.Sprintf("%.1f", gap))
	}
	fmt.Print(t.String())
	fmt.Println("\nWith tight pins the dedicated control IOs of the non-session approach")
	fmt.Println("starve the TAM; with generous pins both approaches converge on the")
	fmt.Println("BIST-limited lower bound — exactly the paper's session-based argument.")
}
