package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"steac/internal/campaign"
)

// Config configures a Coordinator.
type Config struct {
	// Dir is the shared checkpoint root.  Each campaign lives in
	// Dir/<fingerprint[:16]> with the standard checkpoint layout
	// (MANIFEST.json + per-writer journals), so the directory is readable
	// by Inspect and resumable by a plain single-process Run.
	Dir string
	// TTL is the lease time-to-live; a lease not heartbeated within TTL
	// is stolen by the next claim.  0 means 15s.
	TTL time.Duration
	// LeaseMax caps shards per claim.  0 means 4.
	LeaseMax int
	// Clock overrides the lease clock for tests.  nil means time.Now.
	Clock func() time.Time
}

const (
	defaultTTL      = 15 * time.Second
	defaultLeaseMax = 4
)

// fabricCampaign is one tracked campaign: the authoritative plan, its
// lease table, and the lazily-prepared executor used only at merge time.
type fabricCampaign struct {
	plan    campaign.Plan
	dir     string
	tenant  string // first submitter's tenant id ("" pre-tenancy)
	table   *Table
	started time.Time

	mu     sync.Mutex // guards merge + the fields below
	done   bool
	report []byte
}

// Coordinator owns the lease tables and the shared checkpoint store for a
// set of campaigns.  It is safe for concurrent use and holds no state that
// cannot be rebuilt from Dir: New re-registers every campaign found on
// disk, marking journaled shards complete, so a coordinator restart only
// re-runs work that was genuinely in flight.
type Coordinator struct {
	cfg Config
	now func() time.Time

	mu        sync.Mutex
	campaigns map[string]*fabricCampaign // by full fingerprint
	short     map[string]string          // fingerprint[:16] -> full
}

// New builds a Coordinator over cfg.Dir, recovering every campaign already
// on disk.  A subdirectory without a readable manifest is skipped (it may
// be mid-create); a manifest whose kind is not registered is an error —
// the coordinator could not merge it.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("fabric: coordinator needs a checkpoint dir")
	}
	if cfg.TTL <= 0 {
		cfg.TTL = defaultTTL
	}
	if cfg.LeaseMax <= 0 {
		cfg.LeaseMax = defaultLeaseMax
	}
	now := cfg.Clock
	if now == nil {
		now = time.Now
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("fabric: create coordinator dir: %w", err)
	}
	c := &Coordinator{
		cfg:       cfg,
		now:       now,
		campaigns: map[string]*fabricCampaign{},
		short:     map[string]string{},
	}
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("fabric: scan coordinator dir: %w", err)
	}
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		dir := filepath.Join(cfg.Dir, ent.Name())
		if _, err := os.Stat(filepath.Join(dir, "MANIFEST.json")); err != nil {
			continue
		}
		plan, loaded, _, err := campaign.LoadOutcomes(dir)
		if err != nil {
			return nil, fmt.Errorf("fabric: recover %s: %w", ent.Name(), err)
		}
		fc := c.register(plan, dir)
		for idx := range loaded {
			fc.table.MarkComplete(idx)
		}
		if fc.table.Done() {
			if err := c.merge(context.Background(), fc); err != nil && !errors.Is(err, ErrNotDone) {
				return nil, fmt.Errorf("fabric: recover %s: %w", ent.Name(), err)
			}
		}
	}
	return c, nil
}

// register tracks plan under the coordinator.  Callers must not hold c.mu.
func (c *Coordinator) register(plan campaign.Plan, dir string) *fabricCampaign {
	c.mu.Lock()
	defer c.mu.Unlock()
	if fc := c.campaigns[plan.Fingerprint]; fc != nil {
		return fc
	}
	fc := &fabricCampaign{
		plan:    plan,
		dir:     dir,
		table:   NewTable(plan.Shards, c.cfg.TTL, c.now),
		started: c.now(),
	}
	c.campaigns[plan.Fingerprint] = fc
	c.short[plan.Fingerprint[:16]] = plan.Fingerprint
	obsActive.Set(obsActive.Value() + 1)
	return fc
}

// lookup resolves a full or short (16-hex) fingerprint.
func (c *Coordinator) lookup(fp string) (*fabricCampaign, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if full, ok := c.short[fp]; ok {
		fp = full
	}
	if fc := c.campaigns[fp]; fc != nil {
		return fc, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownCampaign, fp)
}

// Submit registers a campaign: decode through the kind registry, plan it,
// and publish the checkpoint manifest under Dir.  Submission is idempotent
// by fingerprint — resubmitting a known campaign (even a finished one)
// returns its current info.  If the directory already holds journaled
// shards (a previous coordinator's work), they are recovered as complete.
func (c *Coordinator) Submit(ctx context.Context, req SubmitRequest) (CampaignInfo, error) {
	spec, err := campaign.Decode(req.Kind, req.Spec)
	if err != nil {
		return CampaignInfo{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	plan, _, err := campaign.PlanCampaign(ctx, spec, req.ShardSize)
	if err != nil {
		return CampaignInfo{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if fc, err := c.lookup(plan.Fingerprint); err == nil {
		return c.info(fc), nil
	}
	dir := filepath.Join(c.cfg.Dir, plan.Fingerprint[:16])
	plan, err = campaign.CreateStore(dir, plan)
	if err != nil {
		return CampaignInfo{}, err
	}
	fc := c.register(plan, dir)
	fc.mu.Lock()
	if fc.tenant == "" {
		fc.tenant = req.Tenant
	}
	fc.mu.Unlock()
	if _, loaded, _, err := campaign.LoadOutcomes(dir); err == nil {
		for idx := range loaded {
			fc.table.MarkComplete(idx)
		}
	}
	obsCampaigns.Add(1)
	return c.info(fc), nil
}

func (c *Coordinator) info(fc *fabricCampaign) CampaignInfo {
	state := "running"
	fc.mu.Lock()
	if fc.done {
		state = "done"
	}
	tenant := fc.tenant
	fc.mu.Unlock()
	return CampaignInfo{
		Fingerprint: fc.plan.Fingerprint, Kind: fc.plan.Kind, Spec: fc.plan.Spec,
		Units: fc.plan.Units, ShardSize: fc.plan.ShardSize, Shards: fc.plan.Shards,
		State: state, Tenant: tenant,
	}
}

// Campaigns lists every tracked campaign, oldest fingerprint first.
func (c *Coordinator) Campaigns() []CampaignInfo {
	c.mu.Lock()
	fps := make([]string, 0, len(c.campaigns))
	for fp := range c.campaigns {
		fps = append(fps, fp)
	}
	c.mu.Unlock()
	sort.Strings(fps)
	out := make([]CampaignInfo, 0, len(fps))
	for _, fp := range fps {
		if fc, err := c.lookup(fp); err == nil {
			out = append(out, c.info(fc))
		}
	}
	return out
}

// CampaignInfo returns the info for one campaign.
func (c *Coordinator) CampaignInfo(fp string) (CampaignInfo, error) {
	fc, err := c.lookup(fp)
	if err != nil {
		return CampaignInfo{}, err
	}
	return c.info(fc), nil
}

// Lease claims up to req.Max shards (capped by LeaseMax) for req.Node.
func (c *Coordinator) Lease(req LeaseRequest) (LeaseResponse, error) {
	if req.Node == "" {
		return LeaseResponse{}, fmt.Errorf("%w: lease needs a node name", ErrBadRequest)
	}
	fc, err := c.lookup(req.Campaign)
	if err != nil {
		return LeaseResponse{}, err
	}
	max := req.Max
	if max <= 0 || max > c.cfg.LeaseMax {
		max = c.cfg.LeaseMax
	}
	resp := LeaseResponse{TTLMS: c.cfg.TTL.Milliseconds()}
	// Done means merged, not merely "every shard claimed complete": the
	// merge may find a claimed shard missing from the journals and
	// re-open the campaign, so nodes must keep polling until the report
	// actually exists.
	fc.mu.Lock()
	resp.Done = fc.done
	fc.mu.Unlock()
	if resp.Done {
		return resp, nil
	}
	for _, idx := range fc.table.Claim(req.Node, max) {
		lo, hi := fc.plan.Bounds(idx)
		resp.Leases = append(resp.Leases, WireLease{
			Shard: idx, Lo: lo, Hi: hi, Key: fc.plan.Key(idx),
		})
	}
	return resp, nil
}

// Heartbeat renews req.Node's leases.
func (c *Coordinator) Heartbeat(req HeartbeatRequest) (HeartbeatResponse, error) {
	if req.Node == "" {
		return HeartbeatResponse{}, fmt.Errorf("%w: heartbeat needs a node name", ErrBadRequest)
	}
	fc, err := c.lookup(req.Campaign)
	if err != nil {
		return HeartbeatResponse{}, err
	}
	renewed, lost := fc.table.Heartbeat(req.Node, req.Shards)
	return HeartbeatResponse{Renewed: renewed, Lost: lost}, nil
}

// Complete records a journaled shard.  When the last shard completes, the
// coordinator merges: it re-scans every journal on disk and either
// assembles the final report or — if a claimed-complete shard is missing
// from the journals — re-leases the gap.
func (c *Coordinator) Complete(ctx context.Context, req CompleteRequest) (CompleteResponse, error) {
	if req.Node == "" {
		return CompleteResponse{}, fmt.Errorf("%w: complete needs a node name", ErrBadRequest)
	}
	fc, err := c.lookup(req.Campaign)
	if err != nil {
		return CompleteResponse{}, err
	}
	already, err := fc.table.Complete(req.Node, req.Shard)
	if err != nil {
		return CompleteResponse{}, err
	}
	resp := CompleteResponse{Already: already}
	if fc.table.Done() {
		if err := c.merge(ctx, fc); err != nil {
			// Missing journal entries re-lease and the campaign keeps
			// running; any other merge failure is the caller's to see.
			if !errors.Is(err, ErrNotDone) {
				return CompleteResponse{}, err
			}
		}
	}
	fc.mu.Lock()
	resp.Done = fc.done
	fc.mu.Unlock()
	return resp, nil
}

// merge assembles the final report from the journals, trusting disk over
// the lease table: shards the table believes complete but the journals do
// not contain go back to pending.
func (c *Coordinator) merge(ctx context.Context, fc *fabricCampaign) error {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if fc.done {
		return nil
	}
	plan, loaded, _, err := campaign.LoadOutcomes(fc.dir)
	if err != nil {
		return err
	}
	if missing := campaign.MissingShards(plan, loaded); len(missing) > 0 {
		fc.table.ResetPending(missing)
		obsMergeMiss.Add(int64(len(missing)))
		return fmt.Errorf("%w: %d shards not journaled (first %d)",
			ErrNotDone, len(missing), missing[0])
	}
	spec, err := campaign.Decode(plan.Kind, plan.Spec)
	if err != nil {
		return err
	}
	_, exec, err := campaign.PlanCampaign(ctx, spec, plan.ShardSize)
	if err != nil {
		return err
	}
	report, err := campaign.AssembleReport(exec, plan, loaded)
	if err != nil {
		return err
	}
	raw, err := json.Marshal(report)
	if err != nil {
		return fmt.Errorf("fabric: marshal report: %w", err)
	}
	fc.report = raw
	fc.done = true
	obsCampaignsOK.Add(1)
	obsActive.Set(obsActive.Value() - 1)
	return nil
}

// Report returns the merged report JSON, or ErrNotDone while shards are
// still in flight.
func (c *Coordinator) Report(fp string) ([]byte, error) {
	fc, err := c.lookup(fp)
	if err != nil {
		return nil, err
	}
	// A campaign recovered complete from disk may not have merged yet;
	// merge lazily rather than waiting for a Complete that never comes.
	if fc.table.Done() {
		if err := c.merge(context.Background(), fc); err != nil {
			return nil, err
		}
	}
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if !fc.done {
		return nil, fmt.Errorf("%w: %s", ErrNotDone, fc.plan.Fingerprint[:16])
	}
	return fc.report, nil
}

// Progress returns the fabric-wide progress of one campaign: shard
// counts from the lease table, per-node ledgers, and a rate-based ETA.
func (c *Coordinator) Progress(fp string) (Progress, error) {
	fc, err := c.lookup(fp)
	if err != nil {
		return Progress{}, err
	}
	snap := fc.table.Snapshot()
	fc.mu.Lock()
	done := fc.done
	fc.mu.Unlock()
	p := Progress{
		Fingerprint:    fc.plan.Fingerprint,
		Kind:           fc.plan.Kind,
		State:          "running",
		ShardsTotal:    snap.Shards,
		ShardsComplete: snap.Complete,
		ShardsLeased:   snap.Leased,
		ShardsPending:  snap.Pending,
		UnitsTotal:     fc.plan.Units,
		ElapsedMS:      c.now().Sub(fc.started).Milliseconds(),
	}
	if done {
		p.State = "done"
	}
	p.UnitsDone = unitsDone(fc.plan, snap.Complete)
	if p.ShardsComplete > 0 && p.ShardsComplete < p.ShardsTotal && p.ElapsedMS > 0 {
		perShard := float64(p.ElapsedMS) / float64(p.ShardsComplete)
		p.EtaMS = int64(perShard * float64(p.ShardsTotal-p.ShardsComplete))
	}
	for _, name := range sortedNodeNames(snap.Nodes) {
		p.Nodes = append(p.Nodes, snap.Nodes[name])
	}
	return p, nil
}

// unitsDone approximates completed units from completed shard count: every
// shard is ShardSize units except the final remainder shard.
func unitsDone(plan campaign.Plan, complete int) int {
	if complete >= plan.Shards {
		return plan.Units
	}
	done := complete * plan.ShardSize
	if done > plan.Units {
		done = plan.Units
	}
	return done
}

func sortedNodeNames(nodes map[string]NodeProgress) []string {
	names := make([]string, 0, len(nodes))
	for name := range nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Register mounts the /v1/fabric/* protocol on mux.
func (c *Coordinator) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/fabric/campaigns", func(w http.ResponseWriter, r *http.Request) {
		var req SubmitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, fmt.Errorf("%w: decode submit: %v", ErrBadRequest, err))
			return
		}
		info, err := c.Submit(r.Context(), req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("GET /v1/fabric/campaigns", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Campaigns())
	})
	mux.HandleFunc("GET /v1/fabric/campaigns/{fp}", func(w http.ResponseWriter, r *http.Request) {
		info, err := c.CampaignInfo(r.PathValue("fp"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("GET /v1/fabric/campaigns/{fp}/progress", func(w http.ResponseWriter, r *http.Request) {
		p, err := c.Progress(r.PathValue("fp"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, p)
	})
	mux.HandleFunc("GET /v1/fabric/campaigns/{fp}/report", func(w http.ResponseWriter, r *http.Request) {
		raw, err := c.Report(r.PathValue("fp"))
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(raw)
	})
	mux.HandleFunc("POST /v1/fabric/lease", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, fmt.Errorf("%w: decode lease: %v", ErrBadRequest, err))
			return
		}
		resp, err := c.Lease(req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /v1/fabric/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, fmt.Errorf("%w: decode heartbeat: %v", ErrBadRequest, err))
			return
		}
		resp, err := c.Heartbeat(req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /v1/fabric/complete", func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, fmt.Errorf("%w: decode complete: %v", ErrBadRequest, err))
			return
		}
		resp, err := c.Complete(r.Context(), req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
}
