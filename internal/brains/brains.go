// Package brains implements the BRAINS memory-BIST compiler of the paper:
// given the embedded memory configurations of an SOC, it plans sequencer
// groups, schedules them into power-bounded BIST sessions, generates the
// BIST circuitry (via package bist), estimates test time and hardware cost,
// and evaluates March-algorithm test efficiency by fault simulation.
//
// BRAINS is usable three ways, mirroring the paper: programmatically
// (Compile), through a command shell (Shell, used by cmd/brains), and
// integrated into the STEAC platform (package core calls Compile and
// schedules the resulting BIST sessions alongside the logic-core tests,
// Fig. 4).
package brains

import (
	"context"
	"fmt"
	"math"
	"sort"

	"steac/internal/bist"
	"steac/internal/march"
	"steac/internal/memfault"
	"steac/internal/memory"
	"steac/internal/netlist"
)

// Grouping selects how memories are assigned to sequencers.
type Grouping int

// Grouping strategies.
const (
	// GroupByKind shares one sequencer among all single-port memories and
	// one among all two-port memories (the BRAINS default: heterogeneous
	// sizes are fine because each TPG paces its own address space).
	GroupByKind Grouping = iota
	// GroupSingle drives every memory from one shared sequencer.
	GroupSingle
	// GroupPerMemory gives every memory its own sequencer (fastest
	// possible parallel test, largest hardware).
	GroupPerMemory
)

// String names the strategy.
func (g Grouping) String() string {
	switch g {
	case GroupByKind:
		return "by-kind"
	case GroupSingle:
		return "single"
	case GroupPerMemory:
		return "per-memory"
	}
	return fmt.Sprintf("Grouping(%d)", int(g))
}

// Options configures a compilation.
type Options struct {
	// Algorithm is the March test to program into the sequencers
	// (default March C-, the BRAINS default).
	Algorithm march.Algorithm
	// Grouping is the sequencer-sharing strategy (default GroupByKind).
	Grouping Grouping
	// MaxPower bounds the summed power of concurrently tested memories,
	// in the units of Power().  Zero means unbounded (everything runs in
	// one parallel session).
	MaxPower float64
	// ClockMHz converts cycles to wall time in reports (default 100).
	ClockMHz float64
	// Backgrounds selects how many data backgrounds each group runs:
	// 1 (default) = solid only; 2 = solid + checkerboard, which sensitizes
	// intra-word coupling faults at twice the test time.
	Backgrounds int
	// Retention enables the data-retention test: a pause of
	// RetentionPauseCycles before the background read and the complement
	// read (DRF decay windows).
	Retention bool
	// RetentionPauseCycles is the pause length in tester cycles (default
	// 10000 ≈ 100 µs at 100 MHz; real retention delays are longer, but the
	// cycle count is the knob and scales linearly).
	RetentionPauseCycles int
	// PortBTest appends a write-A/read-B verification pass for two-port
	// macros (catches read-port defects the port-A March cannot see).
	PortBTest bool
	// Workers is the goroutine count used by fault-simulation evaluation
	// (see memfault.Options.Workers).  0 means runtime.GOMAXPROCS(0).
	Workers int
	// Seed varies any sampling or stochastic choice the evaluation engines
	// make, under the repository-wide Options convention (see DESIGN.md).
	// It is forwarded to memfault.Options.Seed; 0 means the canonical
	// deterministic defaults.
	Seed int64
	// MaxUndetected caps the surviving-fault lists the evaluation keeps for
	// reports (forwarded to memfault.Options.MaxUndetected; 0 = default cap
	// of 32, negative = keep every survivor).
	MaxUndetected int
}

// memfaultOptions forwards the shared engine-option fields to memfault.
func (o Options) memfaultOptions() memfault.Options {
	return memfault.Options{Workers: o.Workers, Seed: o.Seed, MaxUndetected: o.MaxUndetected}
}

func (o Options) withDefaults() Options {
	if o.Algorithm.Name == "" {
		o.Algorithm = march.MarchCMinus()
	}
	if o.ClockMHz == 0 {
		o.ClockMHz = 100
	}
	if o.Backgrounds < 1 {
		o.Backgrounds = 1
	}
	if o.Retention && o.RetentionPauseCycles == 0 {
		o.RetentionPauseCycles = 10000
	}
	return o
}

// Power estimates the test-mode power of one memory macro in arbitrary
// units (1 unit ≈ the switching power of a small 1 Kb macro).  The square
// root captures that bigger macros activate longer bit lines but only one
// word line at a time.
func Power(cfg memory.Config) float64 {
	p := 1 + math.Sqrt(float64(cfg.BitCount()))/32
	if cfg.Kind == memory.TwoPort {
		p *= 1.25
	}
	return p
}

// Session is one power-feasible set of groups tested in parallel.
type Session struct {
	Groups []int // indices into Result.Groups
	Cycles int   // session length = max group length
	Power  float64
}

// Result is a completed BRAINS compilation.
type Result struct {
	Opts     Options
	Groups   []bist.GroupSpec
	Sessions []Session
	Design   *netlist.Design
	Top      *netlist.Module
	Area     bist.AreaReport

	// Cycles is the total BIST test time: the sum of the session lengths.
	Cycles int
}

// TestTimeMS converts Cycles to milliseconds at the configured clock.
func (r *Result) TestTimeMS() float64 {
	return float64(r.Cycles) / (r.Opts.ClockMHz * 1e3)
}

// GroupCycles returns the test length of one planned group (one March pass
// per data background).
func GroupCycles(g bist.GroupSpec) int {
	maxWords := 0
	for _, m := range g.Mems {
		if m.Words > maxWords {
			maxWords = m.Words
		}
	}
	passes := len(g.Backgrounds)
	if passes < 1 {
		passes = 1
	}
	total := (g.Alg.Complexity()*maxWords + len(g.PauseBefore)*g.PauseCycles) * passes
	if g.TestPortB {
		maxB := 0
		for _, m := range g.Mems {
			if m.Kind == memory.TwoPort && m.Words > maxB {
				maxB = m.Words
			}
		}
		total += 4 * maxB
	}
	return total
}

// GroupPower returns the summed power of one planned group (all its
// memories switch together).
func GroupPower(g bist.GroupSpec) float64 {
	p := 0.0
	for _, m := range g.Mems {
		p += Power(m)
	}
	return p
}

// CompileContext plans and generates the BIST subsystem for the given memories.
//
// Compilation itself is pure
// planning plus netlist generation — fast compared to the simulation
// engines — so ctx is checked between its phases rather than inside them;
// a canceled compile returns ctx.Err() wrapped with the stage name.
func CompileContext(ctx context.Context, mems []memory.Config, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if len(mems) == 0 {
		return nil, fmt.Errorf("brains: no memories")
	}
	seen := make(map[string]bool)
	for _, m := range mems {
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("brains: %w", err)
		}
		if seen[m.Name] {
			return nil, fmt.Errorf("brains: duplicate memory name %q", m.Name)
		}
		seen[m.Name] = true
	}
	if err := opts.Algorithm.Validate(); err != nil {
		return nil, fmt.Errorf("brains: %w", err)
	}

	groups, err := plan(mems, opts)
	if err != nil {
		return nil, err
	}
	sessions := scheduleSessions(groups, opts.MaxPower)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("brains: compile: %w", err)
	}

	design := netlist.NewDesign("brains_bist", nil)
	top, area, err := bist.GenerateBIST(design, "membist", groups)
	if err != nil {
		return nil, fmt.Errorf("brains: generating BIST netlist: %w", err)
	}
	if issues := design.Lint(); len(issues) != 0 {
		return nil, fmt.Errorf("brains: generated netlist fails lint: %v", issues[0])
	}

	res := &Result{
		Opts: opts, Groups: groups, Sessions: sessions,
		Design: design, Top: top, Area: area,
	}
	for _, s := range sessions {
		res.Cycles += s.Cycles
	}
	return res, nil
}

func plan(mems []memory.Config, opts Options) ([]bist.GroupSpec, error) {
	var pauses []int
	pauseCyc := 0
	if opts.Retention {
		pauses = memfault.RetentionPauses()
		pauseCyc = opts.RetentionPauseCycles
	}
	var bgs []uint64
	if opts.Backgrounds >= 2 {
		maxBits := 0
		for _, m := range mems {
			if m.Bits > maxBits {
				maxBits = m.Bits
			}
		}
		bgs = []uint64{0, memfault.Checkerboard(maxBits)}
	}
	var groups []bist.GroupSpec
	switch opts.Grouping {
	case GroupSingle:
		groups = []bist.GroupSpec{{Name: "all", Alg: opts.Algorithm, Mems: mems, Backgrounds: bgs,
			PauseBefore: pauses, PauseCycles: pauseCyc, TestPortB: opts.PortBTest}}
	case GroupPerMemory:
		for _, m := range mems {
			groups = append(groups, bist.GroupSpec{Name: m.Name, Alg: opts.Algorithm,
				Mems: []memory.Config{m}, Backgrounds: bgs,
				PauseBefore: pauses, PauseCycles: pauseCyc, TestPortB: opts.PortBTest})
		}
	case GroupByKind:
		var sp, tp []memory.Config
		for _, m := range mems {
			if m.Kind == memory.TwoPort {
				tp = append(tp, m)
			} else {
				sp = append(sp, m)
			}
		}
		if len(sp) > 0 {
			groups = append(groups, bist.GroupSpec{Name: "sp", Alg: opts.Algorithm, Mems: sp, Backgrounds: bgs,
				PauseBefore: pauses, PauseCycles: pauseCyc, TestPortB: opts.PortBTest})
		}
		if len(tp) > 0 {
			groups = append(groups, bist.GroupSpec{Name: "tp", Alg: opts.Algorithm, Mems: tp, Backgrounds: bgs,
				PauseBefore: pauses, PauseCycles: pauseCyc, TestPortB: opts.PortBTest})
		}
	default:
		return nil, fmt.Errorf("brains: unknown grouping %d", int(opts.Grouping))
	}
	return groups, nil
}

// scheduleSessions packs groups into power-feasible parallel sessions using
// first-fit decreasing on power.  With no power bound everything lands in
// one session (fully parallel BIST).  A single group whose own power exceeds
// the bound cannot be split further and gets a session of its own.
func scheduleSessions(groups []bist.GroupSpec, maxPower float64) []Session {
	idx := make([]int, len(groups))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return GroupPower(groups[idx[a]]) > GroupPower(groups[idx[b]])
	})
	var sessions []Session
	for _, gi := range idx {
		p := GroupPower(groups[gi])
		placed := false
		if maxPower > 0 {
			for si := range sessions {
				if sessions[si].Power+p <= maxPower {
					sessions[si].Groups = append(sessions[si].Groups, gi)
					sessions[si].Power += p
					placed = true
					break
				}
			}
		} else if len(sessions) > 0 {
			sessions[0].Groups = append(sessions[0].Groups, gi)
			sessions[0].Power += p
			placed = true
		}
		if !placed {
			sessions = append(sessions, Session{Groups: []int{gi}, Power: p})
		}
	}
	for si := range sessions {
		sort.Ints(sessions[si].Groups)
		for _, gi := range sessions[si].Groups {
			if c := GroupCycles(groups[gi]); c > sessions[si].Cycles {
				sessions[si].Cycles = c
			}
		}
	}
	return sessions
}

// NewEngine builds a behavioural BIST engine for a compiled plan.  rams
// supplies the live memory instances by name; names missing from the map
// get fresh fault-free SRAMs.  The engine runs groups serially, matching
// the worst-case session order; use it for go/no-go self-test simulation.
func NewEngine(res *Result, rams map[string]memory.RAM) (*bist.Engine, error) {
	groups := make([]bist.Group, len(res.Groups))
	for i, gs := range res.Groups {
		g := bist.Group{Name: gs.Name, Alg: gs.Alg, Backgrounds: gs.Backgrounds,
			PauseBefore: gs.PauseBefore, PauseCycles: gs.PauseCycles,
			TestPortB: gs.TestPortB}
		for _, cfg := range gs.Mems {
			ram, ok := rams[cfg.Name]
			if !ok {
				fresh, err := memory.New(cfg)
				if err != nil {
					return nil, err
				}
				ram = fresh
			}
			g.Mems = append(g.Mems, bist.MemoryUnderTest{RAM: ram})
		}
		groups[i] = g
	}
	return bist.NewEngine(groups, bist.Serial)
}

// EvalRow is one line of the March-efficiency evaluation (paper §2:
// "evaluate the memory test efficiency among different designs").
type EvalRow struct {
	Alg        march.Algorithm
	Complexity int
	Cycles     int // test length on the evaluated geometry
	Coverage   memfault.Campaign
}

// EvaluateContext fault-simulates every catalog algorithm over the full generated
// fault list of the given (small) geometry and reports test length vs
// coverage, the efficiency trade-off BRAINS shows its users.
//
// Each algorithm's coverage campaign fans its fault list across opts.Workers
// goroutines (see memfault.Options; Seed and MaxUndetected are forwarded
// under the shared convention); the rows come back in algorithm order
// regardless of the worker count.  A canceled evaluation returns the
// campaign engine's wrapped ctx.Err() and no partial rows.
func EvaluateContext(ctx context.Context, cfg memory.Config, algs []march.Algorithm, opts Options) ([]EvalRow, error) {
	if len(algs) == 0 {
		algs = march.Catalog()
	}
	faults := memfault.AllFaults(cfg)
	rows := make([]EvalRow, 0, len(algs))
	for _, a := range algs {
		camp, err := memfault.CoverageContext(ctx, a, cfg, faults, opts.memfaultOptions())
		if err != nil {
			return nil, err
		}
		rows = append(rows, EvalRow{
			Alg: a, Complexity: a.Complexity(), Cycles: a.Length(cfg.Words), Coverage: camp,
		})
	}
	return rows, nil
}
