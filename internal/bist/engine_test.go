package bist

import (
	"testing"

	"steac/internal/march"
	"steac/internal/memfault"
	"steac/internal/memory"
)

func mems(t *testing.T, cfgs ...memory.Config) []MemoryUnderTest {
	t.Helper()
	out := make([]MemoryUnderTest, len(cfgs))
	for i, c := range cfgs {
		m, err := memory.New(c)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = MemoryUnderTest{RAM: m}
	}
	return out
}

func TestEngineFaultFreePasses(t *testing.T) {
	g := Group{Name: "g0", Alg: march.MarchCMinus(), Mems: mems(t,
		memory.Config{Name: "a", Words: 64, Bits: 8},
		memory.Config{Name: "b", Words: 32, Bits: 16},
	)}
	e, err := NewEngine([]Group{g}, Serial)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run()
	if !res.Pass {
		t.Fatalf("fault-free run failed: %+v", res.Mems)
	}
	// The largest memory paces the group: March C- is 10N with N = 64.
	if want := 10 * 64; res.Cycles != want {
		t.Fatalf("cycles = %d, want %d", res.Cycles, want)
	}
	if res.Cycles != e.PredictedCycles() {
		t.Fatalf("measured %d != predicted %d", res.Cycles, e.PredictedCycles())
	}
}

func TestEngineGroupCyclesFormula(t *testing.T) {
	g := Group{Name: "g", Alg: march.MarchY(), Mems: mems(t,
		memory.Config{Name: "a", Words: 100, Bits: 4},
		memory.Config{Name: "b", Words: 37, Bits: 9},
	)}
	// March Y: elements of 1,3,3,1 ops; each paced by 100 words.
	want := 100*1 + 100*3 + 100*3 + 100*1
	if got := g.Cycles(); got != want {
		t.Fatalf("analytic cycles = %d, want %d", got, want)
	}
	e, err := NewEngine([]Group{g}, Serial)
	if err != nil {
		t.Fatal(err)
	}
	if res := e.Run(); res.Cycles != want {
		t.Fatalf("engine cycles = %d, want %d", res.Cycles, want)
	}
}

func TestEngineSerialVsParallel(t *testing.T) {
	g1 := Group{Name: "g1", Alg: march.MarchCMinus(), Mems: mems(t,
		memory.Config{Name: "a", Words: 128, Bits: 8})}
	g2 := Group{Name: "g2", Alg: march.MarchCMinus(), Mems: mems(t,
		memory.Config{Name: "b", Words: 64, Bits: 8})}

	serial, err := NewEngine([]Group{g1, g2}, Serial)
	if err != nil {
		t.Fatal(err)
	}
	rs := serial.Run()
	if want := 10*128 + 10*64; rs.Cycles != want {
		t.Fatalf("serial cycles = %d, want %d", rs.Cycles, want)
	}

	// Fresh memories for the parallel run (the serial run dirtied them,
	// though March re-initializes anyway).
	g1.Mems = mems(t, memory.Config{Name: "a", Words: 128, Bits: 8})
	g2.Mems = mems(t, memory.Config{Name: "b", Words: 64, Bits: 8})
	parallel, err := NewEngine([]Group{g1, g2}, Parallel)
	if err != nil {
		t.Fatal(err)
	}
	rp := parallel.Run()
	if want := 10 * 128; rp.Cycles != want {
		t.Fatalf("parallel cycles = %d, want %d", rp.Cycles, want)
	}
	if len(rs.GroupCycles) != 2 || len(rp.GroupCycles) != 2 {
		t.Fatal("missing group cycle breakdown")
	}
}

func TestEngineDetectsInjectedFault(t *testing.T) {
	cfg := memory.Config{Name: "f", Words: 32, Bits: 8}
	faulty, err := memfault.NewFaulty(cfg, []memfault.Fault{
		{Kind: memfault.SA1, Victim: memfault.Cell{Addr: 5, Bit: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	good, err := memory.New(memory.Config{Name: "g", Words: 32, Bits: 8})
	if err != nil {
		t.Fatal(err)
	}
	g := Group{Name: "g", Alg: march.MarchCMinus(), Mems: []MemoryUnderTest{
		{RAM: faulty}, {RAM: good},
	}}
	e, err := NewEngine([]Group{g}, Serial)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run()
	if res.Pass {
		t.Fatal("SA1 not detected")
	}
	if res.Mems[0].Pass || res.Mems[0].FirstFail == nil {
		t.Fatalf("faulty memory result: %+v", res.Mems[0])
	}
	if res.Mems[0].FirstFail.Addr != 5 {
		t.Fatalf("first fail at addr %d, want 5", res.Mems[0].FirstFail.Addr)
	}
	if !res.Mems[1].Pass {
		t.Fatal("healthy memory flagged")
	}
}

// The engine and the memfault reference simulator must agree on detection
// for every fault model (they implement the same March semantics through
// different code paths).
func TestEngineMatchesReferenceSimulator(t *testing.T) {
	cfg := memory.Config{Name: "x", Words: 16, Bits: 4}
	faults := memfault.Sample(memfault.AllFaults(cfg), 120, 7)
	for _, alg := range []march.Algorithm{march.MATSPlus(), march.MarchCMinus(), march.MarchY()} {
		for _, f := range faults {
			ref, err := memfault.Simulate(alg, cfg, []memfault.Fault{f}, memfault.Options{})
			if err != nil {
				t.Fatal(err)
			}
			fr, err := memfault.NewFaulty(cfg, []memfault.Fault{f})
			if err != nil {
				t.Fatal(err)
			}
			e, err := NewEngine([]Group{{Name: "g", Alg: alg,
				Mems: []MemoryUnderTest{{RAM: fr}}}}, Serial)
			if err != nil {
				t.Fatal(err)
			}
			res := e.Run()
			if res.Pass == ref.Detected {
				t.Fatalf("%s on %s: engine pass=%t but reference detected=%t",
					alg.Name, f, res.Pass, ref.Detected)
			}
		}
	}
}

func TestEngineBackground(t *testing.T) {
	cfg := memory.Config{Name: "bg", Words: 16, Bits: 8}
	m, err := memory.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := Group{Name: "g", Alg: march.MarchCMinus(),
		Mems: []MemoryUnderTest{{RAM: m, Background: 0x55}}}
	e, err := NewEngine([]Group{g}, Serial)
	if err != nil {
		t.Fatal(err)
	}
	if res := e.Run(); !res.Pass {
		t.Fatalf("checkerboard background run failed: %+v", res.Mems)
	}
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(nil, Serial); err == nil {
		t.Fatal("empty plan accepted")
	}
	if _, err := NewEngine([]Group{{Name: "g", Alg: march.MSCAN()}}, Serial); err == nil {
		t.Fatal("group without memories accepted")
	}
	ok := mems(t, memory.Config{Name: "a", Words: 4, Bits: 2})
	if _, err := NewEngine([]Group{{Name: "g", Alg: march.Algorithm{Name: "empty"}, Mems: ok}}, Serial); err == nil {
		t.Fatal("invalid algorithm accepted")
	}
	if _, err := NewEngine([]Group{{Name: "g", Alg: march.MSCAN(), Mems: ok}}, Schedule(9)); err == nil {
		t.Fatal("bad schedule accepted")
	}
	if Serial.String() != "serial" || Parallel.String() != "parallel" {
		t.Fatal("schedule names")
	}
}

func TestRetentionModeCatchesDRF(t *testing.T) {
	cfg := memory.Config{Name: "rt", Words: 32, Bits: 8}
	mk := func() memory.RAM {
		f, err := memfault.NewFaulty(cfg, []memfault.Fault{
			{Kind: memfault.DRF, Victim: memfault.Cell{Addr: 9, Bit: 4}, Forced: 0},
		})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	plain := Group{Name: "g", Alg: march.MarchCMinus(),
		Mems: []MemoryUnderTest{{RAM: mk()}}}
	e1, err := NewEngine([]Group{plain}, Serial)
	if err != nil {
		t.Fatal(err)
	}
	if r := e1.Run(); !r.Pass {
		t.Fatal("DRF detected without any retention pause")
	}
	ret := Group{Name: "g", Alg: march.MarchCMinus(),
		Mems:        []MemoryUnderTest{{RAM: mk()}},
		PauseBefore: []int{1, 2}, PauseCycles: 100}
	e2, err := NewEngine([]Group{ret}, Serial)
	if err != nil {
		t.Fatal(err)
	}
	r := e2.Run()
	if r.Pass {
		t.Fatal("retention mode missed the DRF")
	}
	// Pause cycles are accounted: 10N + 2*100.
	if want := 10*32 + 200; r.Cycles != want {
		t.Fatalf("cycles = %d, want %d", r.Cycles, want)
	}
	if r.Cycles != ret.Cycles() {
		t.Fatalf("analytic %d != measured %d", ret.Cycles(), r.Cycles)
	}
}

func TestBackgroundGroupCycles(t *testing.T) {
	cfg := memory.Config{Name: "bg", Words: 16, Bits: 8}
	m, err := memory.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := Group{Name: "g", Alg: march.MarchCMinus(),
		Mems:        []MemoryUnderTest{{RAM: m}},
		Backgrounds: []uint64{0, 0x55}}
	e, err := NewEngine([]Group{g}, Serial)
	if err != nil {
		t.Fatal(err)
	}
	r := e.Run()
	if !r.Pass {
		t.Fatalf("dual-background run failed: %+v", r.Mems)
	}
	want := 2 * 10 * 16
	if r.Cycles != want {
		t.Fatalf("cycles = %d, want %d", r.Cycles, want)
	}
	if g.Cycles() != want {
		t.Fatalf("analytic cycles = %d", g.Cycles())
	}
}

func TestPortBPassCatchesPortBFault(t *testing.T) {
	cfg := memory.Config{Name: "tp", Words: 64, Bits: 8, Kind: memory.TwoPort}
	mk := func() memory.RAM {
		f, err := memfault.NewFaulty(cfg, []memfault.Fault{
			{Kind: memfault.SAB1, Victim: memfault.Cell{Addr: 13, Bit: 2}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	// The port-A March cannot see a port-B fault.
	plain := Group{Name: "g", Alg: march.MarchCMinus(),
		Mems: []MemoryUnderTest{{RAM: mk()}}}
	e1, err := NewEngine([]Group{plain}, Serial)
	if err != nil {
		t.Fatal(err)
	}
	if r := e1.Run(); !r.Pass {
		t.Fatal("port-B fault visible to port-A March")
	}
	// The write-A/read-B pass does.
	pb := Group{Name: "g", Alg: march.MarchCMinus(),
		Mems: []MemoryUnderTest{{RAM: mk()}}, TestPortB: true}
	e2, err := NewEngine([]Group{pb}, Serial)
	if err != nil {
		t.Fatal(err)
	}
	r := e2.Run()
	if r.Pass {
		t.Fatal("port-B pass missed the SAB1")
	}
	if r.Mems[0].FirstFail.Addr != 13 {
		t.Fatalf("first fail at %d, want 13", r.Mems[0].FirstFail.Addr)
	}
	// Cycle accounting: 10N + 4N.
	if want := 10*64 + 4*64; r.Cycles != want {
		t.Fatalf("cycles = %d, want %d", r.Cycles, want)
	}
	if pb.Cycles() != r.Cycles {
		t.Fatalf("analytic %d != measured %d", pb.Cycles(), r.Cycles)
	}
}

func TestPortBPassMixedGroup(t *testing.T) {
	// Single-port memories idle during the port-B pass; the two-port
	// macro paces it.
	sp, err := memory.New(memory.Config{Name: "sp", Words: 128, Bits: 8})
	if err != nil {
		t.Fatal(err)
	}
	tp, err := memory.New(memory.Config{Name: "tp", Words: 32, Bits: 8, Kind: memory.TwoPort})
	if err != nil {
		t.Fatal(err)
	}
	g := Group{Name: "g", Alg: march.MarchCMinus(),
		Mems: []MemoryUnderTest{{RAM: sp}, {RAM: tp}}, TestPortB: true}
	e, err := NewEngine([]Group{g}, Serial)
	if err != nil {
		t.Fatal(err)
	}
	r := e.Run()
	if !r.Pass {
		t.Fatalf("mixed group failed: %+v", r.Mems)
	}
	if want := 10*128 + 4*32; r.Cycles != want {
		t.Fatalf("cycles = %d, want %d", r.Cycles, want)
	}
}
