package netlist

import (
	"fmt"
	"sort"
)

// LintIssue is one structural problem found by Lint.
type LintIssue struct {
	Module string
	Kind   string // "undriven", "multidriven", "unknown-ref", "bad-port"
	Detail string
}

func (i LintIssue) String() string {
	return fmt.Sprintf("%s: %s: %s", i.Module, i.Kind, i.Detail)
}

// Lint checks the structural sanity of every module in the design:
// instance references resolve, formal ports exist on the instantiated
// cell/module, every net has exactly one driver, and output ports are
// driven.  Behavioral modules are skipped.
func (d *Design) Lint() []LintIssue {
	var issues []LintIssue
	for _, name := range d.ModuleNames() {
		issues = append(issues, d.lintModule(d.Modules[name])...)
	}
	return issues
}

func (d *Design) lintModule(m *Module) []LintIssue {
	if m.Behavioral {
		return nil
	}
	var issues []LintIssue
	drivers := make(map[string]int)
	loads := make(map[string]int)
	// Module input bits drive nets; output bits are loads.
	for _, p := range m.Ports {
		for _, b := range p.Bits() {
			switch p.Dir {
			case In:
				drivers[b]++
			case Out:
				loads[b]++
			default: // InOut counts as both.
				drivers[b]++
				loads[b]++
			}
		}
	}
	for _, inst := range m.Instances {
		var ins, outs map[string]bool
		if cell, ok := d.Lib.Cell(inst.Of); ok {
			ins, outs = portSets(cell.Inputs, cell.Outputs)
		} else if sub, ok := d.Modules[inst.Of]; ok {
			var inNames, outNames []string
			for _, p := range sub.Ports {
				switch p.Dir {
				case In:
					inNames = append(inNames, p.Bits()...)
				case Out:
					outNames = append(outNames, p.Bits()...)
				default:
					inNames = append(inNames, p.Bits()...)
					outNames = append(outNames, p.Bits()...)
				}
			}
			ins, outs = portSets(inNames, outNames)
		} else {
			issues = append(issues, LintIssue{m.Name, "unknown-ref",
				fmt.Sprintf("instance %s references unknown cell/module %s", inst.Name, inst.Of)})
			continue
		}
		for formal, actual := range inst.Conns {
			in, out := ins[formal], outs[formal]
			if !in && !out {
				issues = append(issues, LintIssue{m.Name, "bad-port",
					fmt.Sprintf("instance %s (%s) has no port %s", inst.Name, inst.Of, formal)})
				continue
			}
			if out {
				drivers[actual]++
			}
			if in {
				loads[actual]++
			}
		}
	}
	nets := make([]string, 0, len(m.Nets))
	for n := range m.Nets {
		nets = append(nets, n)
	}
	sort.Strings(nets)
	for _, n := range nets {
		switch {
		case drivers[n] == 0 && loads[n] > 0:
			issues = append(issues, LintIssue{m.Name, "undriven",
				fmt.Sprintf("net %s has %d loads and no driver", n, loads[n])})
		case drivers[n] > 1:
			issues = append(issues, LintIssue{m.Name, "multidriven",
				fmt.Sprintf("net %s has %d drivers", n, drivers[n])})
		}
	}
	return issues
}

func portSets(in, out []string) (map[string]bool, map[string]bool) {
	ins := make(map[string]bool, len(in))
	for _, p := range in {
		ins[p] = true
	}
	outs := make(map[string]bool, len(out))
	for _, p := range out {
		outs[p] = true
	}
	return ins, outs
}
