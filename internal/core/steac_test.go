package core

import (
	"context"
	"strings"
	"testing"

	"steac/internal/ate"

	"steac/internal/brains"
	"steac/internal/dsc"
	"steac/internal/memory"
	"steac/internal/pattern"
	"steac/internal/sched"
	"steac/internal/stil"
	"steac/internal/testinfo"
	"steac/internal/wrapper"
)

func dscFlowInput(t *testing.T, verify bool) FlowInput {
	t.Helper()
	soc, err := dsc.BuildSOC()
	if err != nil {
		t.Fatal(err)
	}
	stils, err := EmitSTIL(dsc.Cores())
	if err != nil {
		t.Fatal(err)
	}
	return FlowInput{
		STIL:        stils,
		SOC:         soc,
		Resources:   dsc.Resources(),
		Memories:    dsc.Memories(),
		BISTOptions: brains.Options{Grouping: brains.GroupPerMemory},
		Verify:      verify,
	}
}

// TestDSCHeadlineNumbers reproduces the paper's §3 scheduling experiment:
// session-based beats non-session-based under the DSC's IO limit, with
// totals and gap in the published regime (paper: 4,371,194 vs 4,713,935
// cycles, a 7.3% saving).
func TestDSCHeadlineNumbers(t *testing.T) {
	res, err := RunFlowContext(context.Background(), dscFlowInput(t, false))
	if err != nil {
		t.Fatal(err)
	}
	sb, nsb := res.Schedule.TotalCycles, res.NonSession.TotalCycles
	if sb >= nsb {
		t.Fatalf("session-based %d did not beat non-session %d", sb, nsb)
	}
	if sb < 4300000 || sb > 4450000 {
		t.Fatalf("session-based total = %d, outside the paper's regime (4,371,194)", sb)
	}
	if nsb < 4600000 || nsb > 4950000 {
		t.Fatalf("non-session total = %d, outside the paper's regime (4,713,935)", nsb)
	}
	gain := 100 * float64(nsb-sb) / float64(nsb)
	if gain < 4 || gain > 13 {
		t.Fatalf("session-based saving = %.1f%%, paper reports 7.3%%", gain)
	}
	if res.Serial.TotalCycles <= sb {
		t.Fatal("serial baseline should be slowest")
	}
	// Control-IO analysis: 19 dedicated control pins for the three cores.
	s := testinfo.ShareControlIOs(res.Cores)
	if s.Dedicated != 19 {
		t.Fatalf("dedicated control IOs = %d, want the paper's 19", s.Dedicated)
	}
	if res.NonSession.ControlPinsMax != 23 { // 19 + 4 BIST pins
		t.Fatalf("non-session control = %d, want 23", res.NonSession.ControlPinsMax)
	}
}

func TestDSCInsertionAreas(t *testing.T) {
	res, err := RunFlowContext(context.Background(), dscFlowInput(t, false))
	if err != nil {
		t.Fatal(err)
	}
	ins := res.Insertion
	if ins == nil {
		t.Fatal("no insertion result")
	}
	// 221+104 + 25+40 + 165+104 = 659 boundary cells.
	if ins.WBRCells != 659 {
		t.Fatalf("WBR cells = %d, want 659", ins.WBRCells)
	}
	// Paper: controller ~371 gates, TAM mux ~132, overhead ~0.3%.  Ours
	// must land in the same small-glue regime.
	if ins.ControllerGates < 100 || ins.ControllerGates > 1200 {
		t.Fatalf("controller = %.0f gates", ins.ControllerGates)
	}
	// Ours lands below the paper's 132 because the optimizer found a
	// schedule where the two scan cores share one session (less wire
	// re-muxing across sessions); the order of magnitude is what matters.
	if ins.TAMGates < 20 || ins.TAMGates > 500 {
		t.Fatalf("TAM mux = %.0f gates", ins.TAMGates)
	}
	if ins.OverheadPct <= 0 || ins.OverheadPct > 1.0 {
		t.Fatalf("controller+TAM overhead = %.2f%%, paper ~0.3%%", ins.OverheadPct)
	}
	// "A new SOC design with DFT will be ready in minutes": ours must be
	// far below the paper's 5 minutes on a 2001 workstation.
	if ins.Elapsed.Seconds() > 60 {
		t.Fatalf("insertion took %s", ins.Elapsed)
	}
	if issues := ins.Design.Lint(); len(issues) != 0 {
		t.Fatalf("DFT netlist lint: %v", issues[0])
	}
}

// TestDSCFullVerification applies all ~4.4M translated tester cycles to the
// behavioural chip model (Fig. 1 end-to-end); RunFlow fails internally on
// any mismatch or cycle-count disagreement.
func TestDSCFullVerification(t *testing.T) {
	if testing.Short() {
		t.Skip("full-chip ATE verification (~5s) skipped in -short")
	}
	res, err := RunFlowContext(context.Background(), dscFlowInput(t, true))
	if err != nil {
		t.Fatal(err)
	}
	if res.Verify == nil || !res.Verify.Pass {
		t.Fatal("verification missing or failed")
	}
	if res.Verify.Cycles != res.Schedule.TotalCycles {
		t.Fatalf("ATE cycles %d != schedule %d", res.Verify.Cycles, res.Schedule.TotalCycles)
	}
}

func TestFlowInputValidation(t *testing.T) {
	if _, err := RunFlowContext(context.Background(), FlowInput{}); err == nil {
		t.Fatal("empty input accepted")
	}
	stils, err := EmitSTIL(dsc.Cores())
	if err != nil {
		t.Fatal(err)
	}
	dup := FlowInput{STIL: append(stils, stils[0]), Resources: dsc.Resources()}
	if _, err := RunFlowContext(context.Background(), dup); err == nil {
		t.Fatal("duplicate core accepted")
	}
	bad := FlowInput{STIL: []string{"not stil"}, Resources: dsc.Resources()}
	if _, err := RunFlowContext(context.Background(), bad); err == nil {
		t.Fatal("malformed STIL accepted")
	}
	infeasible := FlowInput{STIL: stils, Resources: sched.Resources{
		TestPins: 4, FuncPins: 8, Partitioner: wrapper.LPT}}
	if _, err := RunFlowContext(context.Background(), infeasible); err == nil {
		t.Fatal("infeasible pin budget accepted")
	}
}

func TestBISTGroupsMapping(t *testing.T) {
	b, err := brains.CompileContext(context.Background(), []memory.Config{
		{Name: "a", Words: 1024, Bits: 8},
		{Name: "b", Words: 512, Bits: 8, Kind: memory.TwoPort},
	}, brains.Options{Grouping: brains.GroupPerMemory})
	if err != nil {
		t.Fatal(err)
	}
	groups := BISTGroups(b)
	if len(groups) != 2 {
		t.Fatalf("groups = %d", len(groups))
	}
	// March C- 10N plus the controller's group-advance cycle.
	if groups[0].Cycles != 10*1024+1 {
		t.Fatalf("group cycles = %d", groups[0].Cycles)
	}
	if BISTGroups(nil) != nil {
		t.Fatal("nil result should map to nil groups")
	}
}

func TestReports(t *testing.T) {
	res, err := RunFlowContext(context.Background(), dscFlowInput(t, false))
	if err != nil {
		t.Fatal(err)
	}
	table1 := Table1(res.Cores)
	for _, want := range []string{"USB", "1,629", "716", "202,673", "235,696", "No scan"} {
		if !strings.Contains(table1, want) {
			t.Fatalf("Table 1 missing %q:\n%s", want, table1)
		}
	}
	cmp := ComparisonReport(res)
	for _, want := range []string{"session-based", "non-session-based", "serial", "saves"} {
		if !strings.Contains(cmp, want) {
			t.Fatalf("comparison missing %q", want)
		}
	}
	io := IOReport(res.Cores)
	if !strings.Contains(io, "19") {
		t.Fatalf("IO report missing the 19-pin total:\n%s", io)
	}
	area := AreaReport(res)
	for _, want := range []string{"WBR cell", "test controller", "TAM multiplexer", "memory BIST (logic)", "overhead"} {
		if !strings.Contains(area, want) {
			t.Fatalf("area report missing %q", want)
		}
	}
	sr := ScheduleReport(res.Schedule)
	if !strings.Contains(sr, "USB.scan") || !strings.Contains(sr, "total test time") {
		t.Fatalf("schedule report incomplete:\n%s", sr)
	}
	if AreaReport(&FlowResult{}) == "" {
		t.Fatal("empty-area report")
	}
}

// The EXTEST interconnect session integrates into the DSC flow: the
// schedule gains one session, the translated program verifies end to end,
// and glue defects are caught.
func TestDSCWithInterconnects(t *testing.T) {
	in := dscFlowInput(t, !testing.Short())
	in.Interconnects = dsc.Interconnects()
	res, err := RunFlowContext(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Extest == nil {
		t.Fatal("no extest lane")
	}
	last := res.Schedule.Sessions[len(res.Schedule.Sessions)-1]
	if len(last.Placements) != 1 || last.Placements[0].Test.Kind != sched.ExtestKind {
		t.Fatalf("last session is not the extest session: %+v", last)
	}
	// 24 wires -> 2*ceil(log2(26)) = 10 vectors.
	if res.Extest.Vectors != 10 {
		t.Fatalf("extest vectors = %d, want 10", res.Extest.Vectors)
	}
	if res.Verify != nil && res.Verify.Cycles != res.Schedule.TotalCycles {
		t.Fatalf("verify cycles %d != schedule %d", res.Verify.Cycles, res.Schedule.TotalCycles)
	}
	// Insertion carried the extra session (controller + TAM routes).
	if res.Insertion.CtlSpec.Sessions != len(res.Schedule.Sessions) {
		t.Fatalf("controller sessions = %d, schedule has %d",
			res.Insertion.CtlSpec.Sessions, len(res.Schedule.Sessions))
	}
	// A glue open must be caught by the translated program.
	chip := ate.NewChip(res.Program, res.Cores, ate.WithOpenInterconnect(7))
	r, err := ate.Run(res.Program, chip)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pass {
		t.Fatal("glue open undetected")
	}
}

func TestTimelineReport(t *testing.T) {
	res, err := RunFlowContext(context.Background(), dscFlowInput(t, false))
	if err != nil {
		t.Fatal(err)
	}
	tl := TimelineReport(res.Schedule, 60)
	if !strings.Contains(tl, "USB.scan") || !strings.Contains(tl, "#") {
		t.Fatalf("timeline incomplete:\n%s", tl)
	}
	lines := strings.Split(tl, "\n")
	if len(lines) < len(res.Schedule.Sessions)+2 {
		t.Fatalf("timeline too short:\n%s", tl)
	}
	if TimelineReport(&sched.Schedule{Kind: "empty"}, 5) == "" {
		t.Fatal("empty timeline")
	}
}

// A STIL file carrying explicit vectors drives the flow directly (no ATPG
// substitute), and the translated program still verifies.
func TestFlowWithExplicitVectors(t *testing.T) {
	c := &testinfo.Core{
		Name:        "VEC",
		Clocks:      []string{"ck"},
		ScanEnables: []string{"se"},
		PIs:         3, POs: 2,
		ScanChains: []testinfo.ScanChain{{Name: "c0", Length: 4, In: "si", Out: "so", Clock: "ck"}},
		Patterns:   []testinfo.PatternSet{{Name: "scan", Type: testinfo.Scan, Count: 3, Seed: 99}},
	}
	a, err := pattern.NewATPG(c)
	if err != nil {
		t.Fatal(err)
	}
	scan, fn, err := pattern.Export(a, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	src, err := stil.EmitWithVectors(c, pattern.ToSTIL(c, scan, fn))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFlowContext(context.Background(), FlowInput{
		STIL:      []string{src},
		Resources: sched.Resources{TestPins: 10, FuncPins: 4, Partitioner: wrapper.LPT},
		Verify:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Sources["VEC"].(*pattern.ExplicitSource); !ok {
		t.Fatalf("source is %T, want explicit", res.Sources["VEC"])
	}
	if !res.Verify.Pass {
		t.Fatal("explicit-vector flow failed verification")
	}
	// A count mismatch is rejected.
	bad, err := stil.EmitWithVectors(c, pattern.ToSTIL(c, scan[:2], fn))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunFlowContext(context.Background(), FlowInput{STIL: []string{bad},
		Resources: sched.Resources{TestPins: 10, FuncPins: 4, Partitioner: wrapper.LPT}}); err == nil {
		t.Fatal("vector/count mismatch accepted")
	}
}

// The whole flow is deterministic: two runs produce identical schedules,
// programs and netlists.
func TestFlowDeterminism(t *testing.T) {
	r1, err := RunFlowContext(context.Background(), dscFlowInput(t, false))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunFlowContext(context.Background(), dscFlowInput(t, false))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Schedule.TotalCycles != r2.Schedule.TotalCycles ||
		len(r1.Schedule.Sessions) != len(r2.Schedule.Sessions) {
		t.Fatal("schedule differs between runs")
	}
	v1, err := r1.Insertion.Design.EmitVerilogString()
	if err != nil {
		t.Fatal(err)
	}
	v2, err := r2.Insertion.Design.EmitVerilogString()
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatal("DFT netlist differs between runs")
	}
	if r1.Program.TotalCycles() != r2.Program.TotalCycles() {
		t.Fatal("program differs between runs")
	}
}
