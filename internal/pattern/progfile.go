package pattern

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Cycle-based ATE program files.  The paper: "The test patterns are cycle
// based, which can be applied by external ATE easily."  WriteProgramFile
// streams the translated program as a plain-text tester file — one vector
// line per cycle with drive states (0/1/X) and expected states (L/H/X) —
// and ReadProgramFile loads such a file for replay on the tester model
// (ate.RunRecorded), so the hand-off to a real ATE is a file, exactly as in
// the paper's flow.
//
// Format:
//
//	STEACPROG tam=<w> func=<n> sessions=<k>
//	SESSION <i> cycles=<c>
//	V <tam-drive> <tam-expect> <func-drive> <func-expect> <actions>
//
// Buses render as character vectors ("-" when the bus is empty); actions
// list the per-core scan controls as core:S (shift) or core:C (capture),
// "-" when no core is scanning.

const progMagic = "STEACPROG"

// WriteProgramFile streams the whole program to w.
func WriteProgramFile(w io.Writer, prog *Program) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	fmt.Fprintf(bw, "%s tam=%d func=%d sessions=%d\n",
		progMagic, prog.TamWidth, prog.FuncBus, len(prog.Sessions))
	for _, layout := range prog.Sessions {
		fmt.Fprintf(bw, "SESSION %d cycles=%d\n", layout.Index, layout.Cycles)
		err := prog.Stream(layout, func(c int, cyc *Cycle) bool {
			bw.WriteString("V ")
			writeBits(bw, cyc.TamIn, "01X")
			bw.WriteByte(' ')
			writeBits(bw, cyc.TamExpect, "LHX")
			bw.WriteByte(' ')
			writeBits(bw, cyc.Func, "01X")
			bw.WriteByte(' ')
			writeBits(bw, cyc.FuncExpect, "LHX")
			bw.WriteByte(' ')
			writeActions(bw, cyc.Actions)
			bw.WriteByte('\n')
			return true
		})
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeBits(bw *bufio.Writer, bits []Bit, alphabet string) {
	if len(bits) == 0 {
		bw.WriteByte('-')
		return
	}
	for _, b := range bits {
		bw.WriteByte(alphabet[b])
	}
}

func writeActions(bw *bufio.Writer, actions map[string]CoreAction) {
	if len(actions) == 0 {
		bw.WriteByte('-')
		return
	}
	names := make([]string, 0, len(actions))
	for n := range actions {
		names = append(names, n)
	}
	sort.Strings(names)
	for i, n := range names {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(n)
		if actions[n] == ActCapture {
			bw.WriteString(":C")
		} else {
			bw.WriteString(":S")
		}
	}
}

// RecordedCycle is one parsed vector line.
type RecordedCycle struct {
	Cycle
}

// RecordedSession is one parsed session.
type RecordedSession struct {
	Index  int
	Cycles []RecordedCycle
}

// RecordedProgram is a parsed ATE program file.
type RecordedProgram struct {
	TamWidth int
	FuncBus  int
	Sessions []RecordedSession
}

// TotalCycles sums the recorded session lengths.
func (p *RecordedProgram) TotalCycles() int {
	n := 0
	for _, s := range p.Sessions {
		n += len(s.Cycles)
	}
	return n
}

// ReadProgramFile parses a tester file written by WriteProgramFile.
func ReadProgramFile(r io.Reader) (*RecordedProgram, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("pattern: empty program file")
	}
	header := strings.Fields(sc.Text())
	if len(header) != 4 || header[0] != progMagic {
		return nil, fmt.Errorf("pattern: bad program header %q", sc.Text())
	}
	prog := &RecordedProgram{}
	var err error
	if prog.TamWidth, err = intField(header[1], "tam"); err != nil {
		return nil, err
	}
	if prog.FuncBus, err = intField(header[2], "func"); err != nil {
		return nil, err
	}
	nSessions, err := intField(header[3], "sessions")
	if err != nil {
		return nil, err
	}
	var cur *RecordedSession
	line := 1
	for sc.Scan() {
		line++
		text := sc.Text()
		switch {
		case strings.HasPrefix(text, "SESSION "):
			fields := strings.Fields(text)
			if len(fields) != 3 {
				return nil, fmt.Errorf("pattern: line %d: bad session header", line)
			}
			idx, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("pattern: line %d: bad session index", line)
			}
			prog.Sessions = append(prog.Sessions, RecordedSession{Index: idx})
			cur = &prog.Sessions[len(prog.Sessions)-1]
		case strings.HasPrefix(text, "V "):
			if cur == nil {
				return nil, fmt.Errorf("pattern: line %d: vector before any session", line)
			}
			rc, err := parseVectorLine(text, prog.TamWidth, prog.FuncBus)
			if err != nil {
				return nil, fmt.Errorf("pattern: line %d: %w", line, err)
			}
			cur.Cycles = append(cur.Cycles, rc)
		case strings.TrimSpace(text) == "":
		default:
			return nil, fmt.Errorf("pattern: line %d: unrecognized %q", line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(prog.Sessions) != nSessions {
		return nil, fmt.Errorf("pattern: header says %d sessions, file has %d",
			nSessions, len(prog.Sessions))
	}
	return prog, nil
}

func intField(s, key string) (int, error) {
	k, v, ok := strings.Cut(s, "=")
	if !ok || k != key {
		return 0, fmt.Errorf("pattern: expected %s=<n>, got %q", key, s)
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("pattern: bad %s value %q", key, v)
	}
	return n, nil
}

func parseVectorLine(text string, tamW, funcW int) (RecordedCycle, error) {
	fields := strings.Fields(text)
	if len(fields) != 6 {
		return RecordedCycle{}, fmt.Errorf("want 6 fields, got %d", len(fields))
	}
	var rc RecordedCycle
	var err error
	if rc.TamIn, err = parseBits(fields[1], tamW, "01X"); err != nil {
		return rc, err
	}
	if rc.TamExpect, err = parseBits(fields[2], tamW, "LHX"); err != nil {
		return rc, err
	}
	if rc.Func, err = parseBits(fields[3], funcW, "01X"); err != nil {
		return rc, err
	}
	if rc.FuncExpect, err = parseBits(fields[4], funcW, "LHX"); err != nil {
		return rc, err
	}
	rc.Actions = make(map[string]CoreAction)
	if fields[5] != "-" {
		for _, part := range strings.Split(fields[5], ",") {
			name, act, ok := strings.Cut(part, ":")
			if !ok {
				return rc, fmt.Errorf("bad action %q", part)
			}
			switch act {
			case "S":
				rc.Actions[name] = ActShift
			case "C":
				rc.Actions[name] = ActCapture
			default:
				return rc, fmt.Errorf("unknown action %q", act)
			}
		}
	}
	return rc, nil
}

func parseBits(s string, width int, alphabet string) ([]Bit, error) {
	if s == "-" {
		if width != 0 {
			return nil, fmt.Errorf("empty bus but width %d", width)
		}
		return nil, nil
	}
	if len(s) != width {
		return nil, fmt.Errorf("bus has %d chars, want %d", len(s), width)
	}
	bits := make([]Bit, width)
	for i := 0; i < width; i++ {
		idx := strings.IndexByte(alphabet, s[i])
		if idx < 0 {
			return nil, fmt.Errorf("invalid char %q (alphabet %s)", string(s[i]), alphabet)
		}
		bits[i] = Bit(idx)
	}
	return bits, nil
}
