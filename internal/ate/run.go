package ate

import (
	"fmt"
	"sort"

	"steac/internal/pattern"
)

// Mismatch describes the first failing compare.
type Mismatch struct {
	Session int
	Cycle   int
	Pin     string
}

// Result is the outcome of applying a full chip program.
type Result struct {
	Pass          bool
	Cycles        int
	SessionCycles []int
	Mismatches    int
	First         *Mismatch
	// FailingTests lists the test IDs whose compare windows saw
	// mismatches (sorted, deduplicated) — the ATE-side diagnosis of
	// which core or session failed.
	FailingTests []string
}

// Run applies the translated program to the chip, comparing every non-X
// expectation, and returns the tally.  The cycle count is the ATE's test
// time — the figure the paper's scheduling experiment reports.
func Run(prog *pattern.Program, chip *Chip) (Result, error) {
	res := Result{Pass: true}
	failing := make(map[string]bool)
	for si, layout := range prog.Sessions {
		if err := chip.StartSession(si); err != nil {
			return res, err
		}
		count := 0
		err := prog.Stream(layout, func(c int, cyc *pattern.Cycle) bool {
			tamOut, funcOut := chip.Step(cyc)
			for w, exp := range cyc.TamExpect {
				if !exp.Matches(tamOut[w]) {
					res.record(si, c, fmt.Sprintf("tam_out[%d]", w))
					if id, ok := wireOwner(layout, w, c); ok {
						failing[id] = true
					}
				}
			}
			for s, exp := range cyc.FuncExpect {
				if !exp.Matches(funcOut[s]) {
					res.record(si, c, fmt.Sprintf("func[%d]", s))
					if id, ok := slotOwner(layout, s, c); ok {
						failing[id] = true
					}
				}
			}
			count++
			return true
		})
		if err != nil {
			return res, err
		}
		if count != layout.Cycles {
			return res, fmt.Errorf("ate: session %d emitted %d of %d cycles", si, count, layout.Cycles)
		}
		if !chip.BISTSatisfied() {
			return res, fmt.Errorf("ate: session %d ended before BIST completed", si)
		}
		res.SessionCycles = append(res.SessionCycles, count)
		res.Cycles += count
	}
	if res.Mismatches > 0 {
		res.Pass = false
	}
	for id := range failing {
		res.FailingTests = append(res.FailingTests, id)
	}
	sort.Strings(res.FailingTests)
	return res, nil
}

// wireOwner resolves which test owned TAM wire w at session cycle c.  Pins
// are reused over time (time-disjoint lanes legally share wires and slots),
// so ownership is a (pin, cycle) question, not a pin question.
func wireOwner(layout pattern.SessionLayout, w, c int) (string, bool) {
	for _, lane := range layout.Scan {
		if w >= lane.WireLo && w < lane.WireLo+len(lane.Plan.Chains) &&
			c >= lane.Start && c < lane.Start+lane.Cycles {
			return lane.Core.Name + ".scan", true
		}
	}
	if ex := layout.Extest; ex != nil {
		for _, cl := range ex.Cores {
			if w >= cl.WireLo && w < cl.WireLo+len(cl.Plan.Chains) {
				return "chip.extest", true
			}
		}
	}
	return "", false
}

// slotOwner resolves which test owned functional slot s at session cycle c.
func slotOwner(layout pattern.SessionLayout, s, c int) (string, bool) {
	for _, lane := range layout.Func {
		if s >= lane.SlotLo && s < lane.SlotLo+lane.Slots &&
			c >= lane.Start && c < lane.Start+lane.Cycles {
			return lane.Core.Name + ".func", true
		}
	}
	return "", false
}

func (r *Result) record(session, cycle int, pin string) {
	r.Mismatches++
	if r.First == nil {
		r.First = &Mismatch{Session: session, Cycle: cycle, Pin: pin}
	}
}

// RunRecorded applies a tester file (pattern.ReadProgramFile) to the chip.
// The chip's DFT configuration still comes from the translated program —
// the file carries stimulus and expectations only, as on a real ATE.
func RunRecorded(prog *pattern.Program, rec *pattern.RecordedProgram, chip *Chip) (Result, error) {
	res := Result{Pass: true}
	if rec.TamWidth != prog.TamWidth || rec.FuncBus != prog.FuncBus {
		return res, fmt.Errorf("ate: recorded program geometry %d/%d does not match chip %d/%d",
			rec.TamWidth, rec.FuncBus, prog.TamWidth, prog.FuncBus)
	}
	if len(rec.Sessions) != len(prog.Sessions) {
		return res, fmt.Errorf("ate: recorded %d sessions, chip has %d",
			len(rec.Sessions), len(prog.Sessions))
	}
	for si := range rec.Sessions {
		if err := chip.StartSession(si); err != nil {
			return res, err
		}
		for c := range rec.Sessions[si].Cycles {
			cyc := &rec.Sessions[si].Cycles[c].Cycle
			tamOut, funcOut := chip.Step(cyc)
			for w, exp := range cyc.TamExpect {
				if !exp.Matches(tamOut[w]) {
					res.record(si, c, fmt.Sprintf("tam_out[%d]", w))
				}
			}
			for s, exp := range cyc.FuncExpect {
				if !exp.Matches(funcOut[s]) {
					res.record(si, c, fmt.Sprintf("func[%d]", s))
				}
			}
			res.Cycles++
		}
		res.SessionCycles = append(res.SessionCycles, len(rec.Sessions[si].Cycles))
		if !chip.BISTSatisfied() {
			return res, fmt.Errorf("ate: recorded session %d too short for BIST", si)
		}
	}
	if res.Mismatches > 0 {
		res.Pass = false
	}
	return res, nil
}
