// Package socgen builds behavioural SOC netlists for arbitrary core sets,
// following the structural convention the test-insertion tool expects
// (instance "u_<core>" of module "core_<core>", clocks from an on-chip PLL,
// resets from chip pins).  The DSC model of Fig. 3 is one instance of this
// builder; synthetic multi-core SOCs for robustness/scaling studies are
// another.
package socgen

import (
	"fmt"
	"sort"

	"steac/internal/netlist"
	"steac/internal/testinfo"
	"steac/internal/wrapper"
)

// Options configures the generated SOC.
type Options struct {
	// Name is the design name; the top module is always called "soc".
	Name string
	// Blocks adds behavioural logic blocks (name -> NAND2-equivalent
	// gates), e.g. a processor or glue logic; they clock from the first
	// PLL output.
	Blocks map[string]float64
	// PLLGates is the PLL block's bookkeeping area (default 800).
	PLLGates float64
}

// Build constructs the SOC.  Every core clock pin gets its own PLL output
// (in core order), every core reset pin gets its own chip reset pin, and
// each core's functional IOs surface as "<core>_pi"/"<core>_po" buses.
func Build(cores []*testinfo.Core, opts Options) (*netlist.Design, error) {
	if len(cores) == 0 {
		return nil, fmt.Errorf("socgen: no cores")
	}
	if opts.Name == "" {
		opts.Name = "soc"
	}
	if opts.PLLGates == 0 {
		opts.PLLGates = 800
	}
	d := netlist.NewDesign(opts.Name, nil)

	nClocks, nResets := 0, 0
	for _, c := range cores {
		if err := c.Validate(); err != nil {
			return nil, err
		}
		if _, err := wrapper.GenerateCoreModule(d, c); err != nil {
			return nil, err
		}
		nClocks += len(c.Clocks)
		nResets += len(c.Resets)
	}

	pll := netlist.NewModule("pll")
	pll.Behavioral = true
	pll.AreaOverride = opts.PLLGates
	pll.MustPort("xtal", netlist.In, 1)
	pll.MustPort("ck", netlist.Out, nClocks)
	d.MustAddModule(pll)

	blockNames := make([]string, 0, len(opts.Blocks))
	for name := range opts.Blocks {
		blockNames = append(blockNames, name)
	}
	sort.Strings(blockNames)
	for _, name := range blockNames {
		m := netlist.NewModule(name)
		m.Behavioral = true
		m.AreaOverride = opts.Blocks[name]
		m.MustPort("clk", netlist.In, 1)
		m.MustPort("rstn", netlist.In, 1)
		d.MustAddModule(m)
	}

	top := netlist.NewModule("soc")
	top.MustPort("xtal", netlist.In, 1)
	top.MustPort("rstn", netlist.In, 1)
	if nResets > 0 {
		top.MustPort("rst", netlist.In, nResets)
	}
	pllConns := map[string]string{"xtal": "xtal"}
	for i := 0; i < nClocks; i++ {
		pllConns[netlist.BitName("ck", i, nClocks)] = fmt.Sprintf("ck%d", i)
	}
	top.MustInstance("u_pll", "pll", pllConns)
	for _, name := range blockNames {
		top.MustInstance("u_"+name, name, map[string]string{"clk": "ck0", "rstn": "rstn"})
	}

	ckIdx, rstIdx := 0, 0
	for _, c := range cores {
		lower := lowerName(c.Name)
		if c.PIs > 0 {
			top.MustPort(lower+"_pi", netlist.In, c.PIs)
		}
		if c.POs > 0 {
			top.MustPort(lower+"_po", netlist.Out, c.POs)
		}
		conns := make(map[string]string)
		for i := 0; i < c.PIs; i++ {
			conns[netlist.BitName("pi", i, c.PIs)] = fmt.Sprintf("%s_pi[%d]", lower, i)
		}
		for i := 0; i < c.POs; i++ {
			conns[netlist.BitName("po", i, c.POs)] = fmt.Sprintf("%s_po[%d]", lower, i)
		}
		for _, ck := range c.Clocks {
			conns[ck] = fmt.Sprintf("ck%d", ckIdx)
			ckIdx++
		}
		for _, r := range c.Resets {
			conns[r] = netlist.BitName("rst", rstIdx, nResets)
			rstIdx++
		}
		top.MustInstance("u_"+c.Name, wrapper.CoreModuleName(c.Name), conns)
	}
	d.MustAddModule(top)
	d.Top = "soc"
	if issues := d.Lint(); len(issues) != 0 {
		return nil, fmt.Errorf("socgen: generated SOC fails lint: %v", issues[0])
	}
	return d, nil
}

func lowerName(s string) string {
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		out[i] = c
	}
	return string(out)
}
