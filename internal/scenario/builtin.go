package scenario

// The builtin catalog.  `dsc` is the paper's Table-1 chip, fully pinned so
// every distribution is a point mass and the generated chip is
// seed-invariant and byte-identical to the dsc package's inventory (the
// registry test asserts this with reflect.DeepEqual).  The others span the
// design-space dimensions the related work adds: Sadredini-style
// per-session power budgets for hybrid BIST, Bernardi-style P1500
// logic-core BIST, SRAM-dominated chips, and many-core pin pressure.
func init() {
	Register(dscSpec())
	Register(hybridPowerSpec())
	Register(p1500LBISTSpec())
	Register(memoryHeavySpec())
	Register(manycoreSpec())
}

// dscSpec pins the paper's DSC controller: Table 1's three cores, the 22
// reconstructed SRAM macros, and the 26-pin/34-power budget.
func dscSpec() *Spec {
	return &Spec{
		Name:        "dsc",
		Description: "the paper's Table-1 DSC controller (3 cores, 22 SRAMs, 26 test pins)",
		Cores: []CoreSpec{
			{
				Name:   "USB",
				Clocks: fixed(4), Resets: fixed(3), TestEnables: fixed(6),
				PIs: fixed(221), POs: fixed(104),
				ChainLengths: []int{1629, 78, 293, 45},
				ScanPatterns: fixed(716), ScanSeed: 0xDC01,
			},
			{
				Name:   "TV",
				Clocks: fixed(1), Resets: fixed(1), TestEnables: fixed(1),
				PIs: fixed(25), POs: fixed(40),
				ChainLengths: []int{577, 576}, SharedOuts: 1,
				ScanPatterns: fixed(229), ScanSeed: 0xDC02,
				FuncPatterns: fixed(202673), FuncSeed: 0xDC03,
			},
			{
				Name:   "JPEG",
				Clocks: fixed(1), Resets: fixed(0),
				PIs: fixed(165), POs: fixed(104),
				FuncPatterns: fixed(235696), FuncSeed: 0xDC04,
			},
		},
		Memories: []MemorySpec{
			// CCD frame buffers.
			{Name: "fb0", Words: fixed(65536), Bits: fixed(16)},
			{Name: "fb1", Words: fixed(65536), Bits: fixed(16)},
			{Name: "fb2", Words: fixed(65536), Bits: fixed(16)},
			{Name: "fb3", Words: fixed(65536), Bits: fixed(16)},
			// JPEG working buffers.
			{Name: "jwb0", Words: fixed(32768), Bits: fixed(16)},
			{Name: "jwb1", Words: fixed(32768), Bits: fixed(16)},
			{Name: "jq0", Words: fixed(16384), Bits: fixed(32)},
			{Name: "jq1", Words: fixed(16384), Bits: fixed(32)},
			// Video line buffers.
			{Name: "lb0", Words: fixed(16384), Bits: fixed(16)},
			{Name: "lb1", Words: fixed(16384), Bits: fixed(16)},
			{Name: "lb2", Words: fixed(8192), Bits: fixed(16)},
			{Name: "lb4", Words: fixed(990), Bits: fixed(16)},
			{Name: "lb5", Words: fixed(990), Bits: fixed(16)},
			// Processor caches / scratch.
			{Name: "icache", Words: fixed(8192), Bits: fixed(32)},
			{Name: "dcache", Words: fixed(8192), Bits: fixed(32)},
			{Name: "scr0", Words: fixed(4096), Bits: fixed(16)},
			{Name: "scr1", Words: fixed(2048), Bits: fixed(8)},
			{Name: "scr2", Words: fixed(1024), Bits: fixed(8)},
			// Interface FIFOs (two-port).
			{Name: "usbfifo0", Words: fixed(4096), Bits: fixed(16), TwoPort: true},
			{Name: "usbfifo1", Words: fixed(4096), Bits: fixed(16), TwoPort: true},
			{Name: "tvfifo", Words: fixed(2048), Bits: fixed(32), TwoPort: true},
			{Name: "extfifo", Words: fixed(512), Bits: fixed(16), TwoPort: true},
		},
		Blocks: map[string]float64{"processor": 60000, "extmem": 18000, "glue": 13000},
		Resources: &ResourceSpec{
			TestPins: 26, FuncPins: 300, MaxPower: 34, Partitioner: "lpt",
		},
		BIST: &BISTSpec{Grouping: "per-memory"},
	}
}

// hybridPowerSpec is the Sadredini-style power-constrained hybrid-BIST SOC:
// scan/functional cores plus per-memory BIST under a per-session summed
// power budget (18) tight enough that the scheduler must spread the BIST
// groups (up to ~36 power in total) over several sessions.
func hybridPowerSpec() *Spec {
	return &Spec{
		Name:        "hybrid-power",
		Description: "power-budgeted hybrid BIST (Sadredini-style per-session envelope)",
		Cores: []CoreSpec{
			{
				Name: "dsp", Count: span(2, 3),
				Clocks: fixed(1), Resets: fixed(1), TestEnables: fixed(1),
				PIs: span(16, 48), POs: span(16, 48),
				Chains: span(2, 4), ChainLength: span(60, 240),
				ScanPatterns: span(40, 100), FuncPatterns: span(0, 400),
			},
			{
				Name:   "ctrl",
				Clocks: fixed(1), Resets: fixed(1),
				PIs: span(24, 64), POs: span(16, 40),
				Chains: span(1, 2), ChainLength: span(40, 160),
				ScanPatterns: span(30, 80),
			},
			{
				Name:   "codec",
				Clocks: fixed(1), Resets: fixed(1),
				PIs: span(32, 96), POs: span(24, 64),
				FuncPatterns: span(500, 2500),
			},
		},
		Memories: []MemorySpec{
			{Name: "buf", Count: span(2, 4), Words: choice(256, 512, 1024, 2048), Bits: choice(8, 16)},
			{Name: "fifo", Count: span(1, 2), Words: choice(128, 256, 512), Bits: choice(8, 16), TwoPort: true},
		},
		Blocks: map[string]float64{"glue": 4000},
		Resources: &ResourceSpec{
			TestPins: 40, FuncPins: 200, MaxPower: 30, PowerBudget: 18, Partitioner: "lpt",
		},
		BIST: &BISTSpec{Grouping: "per-memory"},
	}
}

// p1500LBISTSpec derives from hybrid-power (exercising the merge path) and
// converts most scanned cores to Bernardi-style P1500 hybrid logic BIST:
// on-chip pseudo-random sessions with a deterministic external top-up.
func p1500LBISTSpec() *Spec {
	return &Spec{
		Name:        "p1500-lbist",
		Base:        "hybrid-power",
		Description: "P1500 logic-core BIST variant (Bernardi-style hybrid LBIST + scan top-up)",
		LogicBIST: &LogicBISTSpec{
			Fraction: 0.75,
			Patterns: span(200, 800),
			TopUp:    0.15,
		},
	}
}

// memoryHeavySpec is an SRAM-dominated chip: one small MCU, many small
// macros, kind-grouped sequencers.
func memoryHeavySpec() *Spec {
	return &Spec{
		Name:        "memory-heavy",
		Description: "SRAM-dominated SOC: one MCU, 6-10 small macros, kind-grouped BIST",
		Cores: []CoreSpec{
			{
				Name:   "mcu",
				Clocks: fixed(1), Resets: fixed(1),
				PIs: span(16, 40), POs: span(8, 32),
				Chains: span(1, 3), ChainLength: span(50, 200),
				ScanPatterns: span(30, 80),
			},
		},
		Memories: []MemorySpec{
			{Name: "ram", Count: span(6, 10), Words: choice(64, 128, 256, 512, 1024),
				Bits: choice(4, 8, 16), TwoPortFrac: 0.25},
		},
		Resources: &ResourceSpec{TestPins: 32, FuncPins: 120, Partitioner: "lpt"},
		BIST:      &BISTSpec{Grouping: "by-kind", Algorithm: "March C-"},
	}
}

// manycoreSpec stresses pin sharing: 5-7 identical processing elements
// behind a budget that only session-based control sharing satisfies.
func manycoreSpec() *Spec {
	return &Spec{
		Name:        "manycore",
		Description: "5-7 scan PEs sharing a tight pin budget, small scratchpads",
		Cores: []CoreSpec{
			{
				Name: "pe", Count: span(5, 7),
				Clocks: fixed(1), Resets: fixed(1), TestEnables: fixed(1),
				PIs: span(8, 24), POs: span(8, 24),
				Chains: span(1, 3), ChainLength: span(30, 120),
				ScanPatterns: span(20, 60),
			},
		},
		Memories: []MemorySpec{
			{Name: "spm", Count: span(2, 3), Words: choice(128, 256, 512), Bits: choice(8, 16)},
		},
		Resources: &ResourceSpec{TestPins: 44, FuncPins: 100, Partitioner: "lpt"},
		BIST:      &BISTSpec{Grouping: "per-memory"},
	}
}
