package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"steac/internal/campaign"
	"steac/internal/memfault"
	"steac/internal/serve"
	"steac/internal/xcheck"
)

// The checkpointable campaign mode:
//
//	dscflow -campaign spec.json -checkpoint DIR   start (or resume) a campaign
//	dscflow -resume DIR                           resume from the manifest alone
//
// A spec file names a campaign kind plus its canonical spec payload:
//
//	{"kind": "memfault",
//	 "spec": {"algorithm": "March C-",
//	          "config": {"Name": "fb0", "Words": 65536, "Bits": 16, "Kind": 0},
//	          "all_faults": true}}
//
// SIGINT/SIGTERM checkpoint gracefully: in-flight shards finish and are
// journaled, then the process exits non-zero; rerunning either command
// picks up exactly where it stopped and prints a report bit-identical to
// an uninterrupted run.

// specFile is the on-disk shape of a -campaign argument.
type specFile struct {
	Kind string          `json:"kind"`
	Spec json.RawMessage `json:"spec"`
}

// runCampaignCLI dispatches the -campaign / -resume modes.
func runCampaignCLI(specPath, resumeDir, checkpointDir string, shardSize, workers int, reportOut string) error {
	var (
		spec campaign.Spec
		dir  = checkpointDir
		err  error
	)
	switch {
	case specPath != "" && resumeDir != "":
		return fmt.Errorf("-campaign and -resume are mutually exclusive")
	case specPath != "":
		raw, rerr := os.ReadFile(specPath)
		if rerr != nil {
			return rerr
		}
		var sf specFile
		if err := json.Unmarshal(raw, &sf); err != nil {
			return fmt.Errorf("parse %s: %w", specPath, err)
		}
		spec, err = campaign.Decode(sf.Kind, sf.Spec)
	case resumeDir != "":
		// The checkpoint directory is self-describing: kind and spec come
		// from the manifest.
		dir = resumeDir
		spec, err = campaign.LoadSpec(resumeDir)
	}
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	res, err := campaign.Run(ctx, spec, campaign.Options{
		Workers:   workers,
		ShardSize: shardSize,
		Dir:       dir,
		OnShard: func(ev campaign.ShardEvent) {
			if ev.Resumed {
				return
			}
			fmt.Fprintf(os.Stderr, "campaign: shard %d/%d (%d/%d units)\n",
				ev.Done, ev.Total, ev.UnitsDone, ev.UnitsTotal)
		},
	})
	if err != nil {
		if dir != "" && errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "campaign: interrupted; checkpoint saved under %s\n", dir)
		}
		return err
	}

	fmt.Printf("campaign %s: %d shards (%d resumed, %d repaired)\n",
		res.Fingerprint[:12], res.Shards, res.Resumed, res.Repaired)
	if reportOut != "" {
		raw, err := json.Marshal(res.Report)
		if err != nil {
			return fmt.Errorf("marshal report: %w", err)
		}
		if err := os.WriteFile(reportOut, raw, 0o644); err != nil {
			return err
		}
	}
	printCampaignReport(res.Report)
	return nil
}

// runRemoteCLI submits a campaign spec file to a steacd daemon through the
// typed v1 job API and polls it to completion.  With useFabric the daemon
// must be a fabric coordinator and the shards run on whatever nodes have
// joined the fabric; otherwise the job runs on the daemon's local pool.
// Either way the fetched report is byte-identical to a local run of the
// same spec.  Daemon-side rejections arrive as typed sentinels — an
// unknown API key surfaces as serve.ErrUnauthorized, an exhausted tenant
// quota as serve.ErrQuotaExceeded — with the server's message attached.
func runRemoteCLI(specPath, baseURL, apiKey string, shardSize, workers int, useFabric bool, reportOut string) error {
	if specPath == "" {
		return fmt.Errorf("-fabric/-submit require -campaign (the spec file to submit)")
	}
	raw, err := os.ReadFile(specPath)
	if err != nil {
		return err
	}
	var sf specFile
	if err := json.Unmarshal(raw, &sf); err != nil {
		return fmt.Errorf("parse %s: %w", specPath, err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	client := &serve.Client{Base: baseURL, APIKey: apiKey}
	st, err := client.SubmitJob(ctx, serve.JobRequest{
		Kind: sf.Kind, Spec: sf.Spec, ShardSize: shardSize, Workers: workers, Fabric: useFabric,
	})
	if err != nil {
		return fmt.Errorf("submit campaign job: %w", err)
	}
	fmt.Fprintf(os.Stderr, "job %s submitted (%s, campaign %s)\n", st.ID, st.State, st.Fingerprint[:12])

	lastDone := -1
	fin, err := client.WaitJob(ctx, st.ID, 500*time.Millisecond, func(s serve.JobStatus) {
		if s.ShardsDone == lastDone {
			return
		}
		lastDone = s.ShardsDone
		if s.Fabric != nil {
			fmt.Fprintf(os.Stderr, "fabric: %d/%d shards (%d leased, %d pending)\n",
				s.Fabric.ShardsComplete, s.Fabric.ShardsTotal, s.Fabric.ShardsLeased, s.Fabric.ShardsPending)
			for _, node := range s.Fabric.Nodes {
				fmt.Fprintf(os.Stderr, "fabric:   node %-20s leased %2d  completed %3d  stolen %d\n",
					node.Node, node.Leased, node.Completed, node.Stolen)
			}
			return
		}
		fmt.Fprintf(os.Stderr, "job %s: %d/%d shards (%d/%d units)\n",
			s.ID, s.ShardsDone, s.ShardsTotal, s.UnitsDone, s.UnitsTotal)
	})
	if err != nil {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "interrupted; the job keeps running on the daemon")
		}
		return err
	}
	if fin.State != "done" {
		return fmt.Errorf("job %s ended %s: %s", fin.ID, fin.State, fin.Error)
	}

	if reportOut != "" {
		if err := os.WriteFile(reportOut, fin.Result, 0o644); err != nil {
			return err
		}
	}
	mode := "remote"
	if useFabric {
		mode = "fabric"
	}
	fmt.Printf("campaign %s: %d shards (%s)\n", fin.Fingerprint[:12], fin.ShardsTotal, mode)
	printFabricReport(sf.Kind, fin.Result)
	return nil
}

// printFabricReport decodes the raw report JSON by campaign kind into the
// engine-native type so the human rendering matches local runs.
func printFabricReport(kind string, raw []byte) {
	switch kind {
	case campaign.KindMemfault:
		var rep memfault.Campaign
		if json.Unmarshal(raw, &rep) == nil {
			printCampaignReport(rep)
			return
		}
	case campaign.KindXCheck:
		var rep xcheck.CampaignResult
		if json.Unmarshal(raw, &rep) == nil {
			printCampaignReport(rep)
			return
		}
	}
	fmt.Println(string(raw))
}

// printCampaignReport renders the engine-native report of a finished
// campaign.
func printCampaignReport(report interface{}) {
	switch rep := report.(type) {
	case memfault.Campaign:
		fmt.Printf("%s: %d/%d faults detected (%.2f%%)\n",
			rep.Algorithm, rep.Detected, rep.Total, rep.Percent())
		for _, cc := range rep.ByClass {
			fmt.Printf("  %-5s %4d/%-4d %6.2f%%\n", cc.Class, cc.Detected, cc.Total, cc.Percent())
		}
		if len(rep.Undetected) > 0 {
			fmt.Printf("  undetected (first %d):", len(rep.Undetected))
			for i, f := range rep.Undetected {
				if i == 4 {
					fmt.Print(" ...")
					break
				}
				fmt.Printf(" %s", f)
			}
			fmt.Println()
		}
	case xcheck.CampaignResult:
		fmt.Println(rep.String())
	default:
		blob, _ := json.Marshal(rep)
		fmt.Println(string(blob))
	}
}
