package stil

import (
	"strings"
	"testing"

	"steac/internal/testinfo"
)

// FuzzParse throws arbitrary bytes at the STIL lexer and both parser entry
// points.  The contract under test: malformed input must come back as an
// error, never as a panic, and anything the parser accepts must survive an
// emit→parse round trip.
func FuzzParse(f *testing.F) {
	for _, c := range []*testinfo.Core{usbCore(), tvCore(), jpegCore()} {
		if src, err := Emit(c); err == nil {
			f.Add(src)
		}
	}
	f.Add("STIL 1.0;\nSignals { a In; b Out; }\n")
	f.Add("Signals { \"si0\" In { ScanIn; } }")
	f.Add("{* type=scan count=716 seed=1 *}")
	f.Add("Signals { a In; } SignalGroups { g = 'a'; }")
	f.Add("// comment only\n")
	f.Add("Pattern p { V { g = 01; } }")
	f.Add("Signals { \"unterminated")
	f.Add("{* unterminated annotation")
	f.Fuzz(func(t *testing.T, src string) {
		stmts, err := ParseAST(src)
		if err == nil && stmts == nil && strings.TrimSpace(src) != "" {
			// Empty result for non-empty accepted input is fine (comments,
			// stray semicolons); nothing further to check.
			return
		}
		core, err := Parse(src)
		if err != nil {
			return
		}
		if core == nil {
			t.Fatalf("Parse returned nil core without error")
		}
		out, err := Emit(core)
		if err != nil {
			// Parse can accept cores Emit refuses (e.g. empty name); that
			// is an error return, not a crash, which is all we require.
			return
		}
		if _, err := Parse(out); err != nil {
			t.Fatalf("re-parse of emitted core failed: %v\n%s", err, out)
		}
	})
}

// FuzzParseWithVectors covers the vector-bearing reader used for pattern
// exchange; it shares the lexer with Parse but walks Pattern blocks too.
func FuzzParseWithVectors(f *testing.F) {
	if src, err := Emit(tvCore()); err == nil {
		f.Add(src)
	}
	f.Add("Signals { a In; b Out; } Pattern p { W w1; V { a = 0; b = H; } }")
	f.Add("Pattern p { Shift { V { si = 0101; } } }")
	f.Fuzz(func(t *testing.T, src string) {
		core, vecs, err := ParseWithVectors(src)
		if err != nil {
			return
		}
		if core == nil {
			t.Fatalf("ParseWithVectors returned nil core without error")
		}
		_ = vecs
	})
}
