package netlist

import (
	"fmt"

	"steac/internal/obs"
)

// Observability: Tick-level counting is the finest grain instrumented — a
// tick evaluates the whole gate array (microseconds), so one atomic add is
// noise.  Settle stays uninstrumented: it runs several times per tick and
// is the innermost hot loop.
var (
	obsSims     = obs.GetCounter("netlist.sims_compiled")
	obsTicks    = obs.GetCounter("netlist.ticks")
	obsInjected = obs.GetCounter("netlist.faults_injected")
)

// CompiledSim is a compiled, levelized variant of Simulator for the same
// two-valued zero-delay semantics.  Nets are interned to dense integer ids,
// library cells evaluate through an opcode switch instead of per-call maps,
// and combinational gates are topologically sorted at build time so a
// Settle is a single deterministic pass instead of an iterative fixpoint.
// On the generated BIST and wrapper netlists it is two to three orders of
// magnitude faster than Simulator, which is what makes full-March-session
// differential runs and gate-level fault campaigns tractable.
//
// The design must be free of combinational loops (NewCompiledSim reports
// one as an error).  Semantics — including the treatment of latches as
// edge-triggered on their enable and the synchronous sampling of the DFFR
// reset pin — are bit-identical to Simulator; TestCompiledSimMatchesSimulator
// locks that in.
type CompiledSim struct {
	p     *csProg
	gates []cGate // per-sim gate headers; in/out slices are copied on fault injection
	vals  []bool  // net values, indexed by net id
	state []bool  // per-gate stored bit (sequential gates only)
	next  []bool
	pre   []bool // scratch: pre-edge clock values in the generic Tick path

	forces  []cForce        // active stuck-at injections, in injection order
	scratch map[string]bool // reused input map for custom (non-library) cells
	clkIDs  map[string]int  // cached NetID lookups for Tick
}

// csProg is the shared immutable part of a compiled simulation: net
// interning, topological order and the fault-site list.  Clones share it.
type csProg struct {
	names     []string
	ids       map[string]int32
	comb      []int32 // combinational gate indices in topological order
	seqs      []int32 // sequential gate indices
	byName    map[string]int32
	sites     []SAFault
	const0    int32  // reserved always-0 net backing stuck-at-0 input forces
	const1    int32  // reserved always-1 net
	clockPure []bool // net id -> feeds only sequential clock pins
}

type cGate struct {
	op      csOp
	cell    *Cell
	name    string
	in      []int32 // net id per cell.Inputs slot; -1 when unconnected
	out     []int32 // net id per cell.Outputs slot; -1 when unconnected
	seq     bool
	clkSlot int // index into in of the clock pin (sequential cells)
	qSlot   int // index into out of "Q" (-1 if absent)
	qnSlot  int // index into out of "QN" (-1 if absent)
}

// cForce records one injected stuck-at so ClearFaults can undo it.
type cForce struct {
	gate int32
	slot int
	out  bool
	orig int32 // original net id of the rewired slot
	val  bool  // forced value (output forces re-assert it on Reset)
}

type csOp uint8

const (
	opCustom csOp = iota
	opInv
	opBuf
	opNand2
	opNor2
	opAnd2
	opOr2
	opXor2
	opXnor2
	opMux2
	opTie0
	opTie1
	opDFF
	opSDFF
	opDFFR
	opLatch
)

// opFor maps a cell to its opcode.  Only cells of the shared default
// library compile to opcodes — a user library may reuse a name like "INV"
// with different semantics, so anything else evaluates through cell.Eval.
func opFor(c *Cell) csOp {
	if dc, ok := DefaultLibrary().Cell(c.Name); !ok || dc != c {
		return opCustom
	}
	switch c.Name {
	case CellInv:
		return opInv
	case CellBuf:
		return opBuf
	case CellNand2:
		return opNand2
	case CellNor2:
		return opNor2
	case CellAnd2:
		return opAnd2
	case CellOr2:
		return opOr2
	case CellXor2:
		return opXor2
	case CellXnor2:
		return opXnor2
	case CellMux2:
		return opMux2
	case CellTie0:
		return opTie0
	case CellTie1:
		return opTie1
	case CellDFF:
		return opDFF
	case CellSDFF:
		return opSDFF
	case CellDFFR:
		return opDFFR
	case CellLatchL:
		return opLatch
	}
	return opCustom
}

// NewCompiledSim flattens top inside d, interns its nets, levelizes the
// combinational logic and returns a simulator with all nets at 0.
func NewCompiledSim(d *Design, top string) (*CompiledSim, error) {
	fgs, err := flatten(d, top)
	if err != nil {
		return nil, err
	}
	p := &csProg{
		ids:    make(map[string]int32),
		byName: make(map[string]int32, len(fgs)),
		sites:  enumerateFaults(fgs),
	}
	intern := func(n string) int32 {
		if id, ok := p.ids[n]; ok {
			return id
		}
		id := int32(len(p.names))
		p.names = append(p.names, n)
		p.ids[n] = id
		return id
	}
	// Intern the top module's port bits first so they exist even when a
	// port is unconnected inside (NetID must resolve every pin).
	if m := d.Modules[top]; m != nil {
		for _, port := range m.Ports {
			for _, b := range port.Bits() {
				intern(b)
			}
		}
	}
	gates := make([]cGate, len(fgs))
	for i, fg := range fgs {
		g := cGate{
			op: opFor(fg.cell), cell: fg.cell, name: fg.name,
			seq: fg.cell.Seq, qSlot: -1, qnSlot: -1,
		}
		g.in = make([]int32, len(fg.cell.Inputs))
		for si, f := range fg.cell.Inputs {
			if net, ok := fg.conns[f]; ok {
				g.in[si] = intern(net)
			} else {
				g.in[si] = -1
			}
			if fg.cell.Seq && f == fg.cell.Clock {
				g.clkSlot = si
			}
		}
		g.out = make([]int32, len(fg.cell.Outputs))
		for oi, f := range fg.cell.Outputs {
			if net, ok := fg.conns[f]; ok {
				g.out[oi] = intern(net)
			} else {
				g.out[oi] = -1
			}
			switch f {
			case "Q":
				g.qSlot = oi
			case "QN":
				g.qnSlot = oi
			}
		}
		if _, dup := p.byName[fg.name]; dup {
			return nil, fmt.Errorf("netlist: duplicate flattened gate name %s", fg.name)
		}
		p.byName[fg.name] = int32(i)
		gates[i] = g
	}
	p.const0 = intern("$const0")
	p.const1 = intern("$const1")
	nNets := len(p.names)

	// Topological order of the combinational gates.  Sequential inputs are
	// sampled only at capture time, after a Settle, so they impose no
	// ordering constraint; only comb->comb edges matter.
	driver := make([]int32, nNets)
	for i := range driver {
		driver[i] = -1
	}
	combCount := 0
	for i := range gates {
		if gates[i].seq {
			continue
		}
		combCount++
		for _, n := range gates[i].out {
			if n >= 0 {
				driver[n] = int32(i)
			}
		}
	}
	indeg := make([]int, len(gates))
	adj := make([][]int32, len(gates))
	for i := range gates {
		if gates[i].seq {
			continue
		}
		for _, n := range gates[i].in {
			if n < 0 || driver[n] < 0 {
				continue
			}
			d := driver[n]
			adj[d] = append(adj[d], int32(i))
			indeg[i]++
		}
	}
	queue := make([]int32, 0, combCount)
	for i := range gates {
		if !gates[i].seq && indeg[i] == 0 {
			queue = append(queue, int32(i))
		}
	}
	p.comb = make([]int32, 0, combCount)
	for len(queue) > 0 {
		gi := queue[0]
		queue = queue[1:]
		p.comb = append(p.comb, gi)
		for _, succ := range adj[gi] {
			indeg[succ]--
			if indeg[succ] == 0 {
				queue = append(queue, succ)
			}
		}
	}
	if len(p.comb) != combCount {
		return nil, fmt.Errorf("netlist: %s has a combinational loop (%d of %d gates unlevelized)",
			top, combCount-len(p.comb), combCount)
	}
	for i := range gates {
		if gates[i].seq {
			p.seqs = append(p.seqs, int32(i))
		}
	}

	// A net is "clock pure" when its only loads are sequential clock pins
	// and no gate drives it; pulsing it cannot move any other net, which
	// enables the two-settle Tick fast path.
	p.clockPure = make([]bool, nNets)
	for i := range p.clockPure {
		p.clockPure[i] = true
	}
	for i := range gates {
		g := &gates[i]
		for si, n := range g.in {
			if n >= 0 && !(g.seq && si == g.clkSlot) {
				p.clockPure[n] = false
			}
		}
		for _, n := range g.out {
			if n >= 0 {
				p.clockPure[n] = false
			}
		}
	}

	s := &CompiledSim{
		p:       p,
		gates:   gates,
		vals:    make([]bool, nNets),
		state:   make([]bool, len(gates)),
		next:    make([]bool, len(gates)),
		pre:     make([]bool, len(gates)),
		scratch: make(map[string]bool, 8),
		clkIDs:  make(map[string]int, 2),
	}
	s.vals[p.const1] = true
	s.Settle()
	obsSims.Add(1)
	return s, nil
}

// GateCount reports the number of flattened primitive gates.
func (s *CompiledSim) GateCount() int { return len(s.gates) }

// NetID resolves a net name to its dense id, or -1 when unknown.  Resolve
// once and use the *ID accessors in per-cycle loops.
func (s *CompiledSim) NetID(name string) int {
	if id, ok := s.p.ids[name]; ok {
		return int(id)
	}
	return -1
}

// BusIDs resolves port bits name[0..width-1] following the BitName
// convention (a width-1 bus is the bare name); missing bits map to -1.
func (s *CompiledSim) BusIDs(name string, width int) []int {
	ids := make([]int, width)
	for i := range ids {
		ids[i] = s.NetID(BitName(name, i, width))
	}
	return ids
}

// SetID drives a net by id.
func (s *CompiledSim) SetID(id int, v bool) { s.vals[id] = v }

// GetID reads a net by id.
func (s *CompiledSim) GetID(id int) bool { return s.vals[id] }

// Set drives a top-level net by name; unknown names are ignored (the
// compiled net set is fixed at build time).
func (s *CompiledSim) Set(net string, v bool) {
	if id := s.NetID(net); id >= 0 {
		s.vals[id] = v
	}
}

// Get reads a net by name (false when unknown).
func (s *CompiledSim) Get(net string) bool {
	if id := s.NetID(net); id >= 0 {
		return s.vals[id]
	}
	return false
}

// SetBus drives port bits name[0..len(v)-1] from v (width-1 buses use the
// bare net name, per the BitName convention).
func (s *CompiledSim) SetBus(name string, v []bool) {
	for i, b := range v {
		s.Set(BitName(name, i, len(v)), b)
	}
}

// GetBus reads port bits name[0..width-1].
func (s *CompiledSim) GetBus(name string, width int) []bool {
	v := make([]bool, width)
	for i := range v {
		v[i] = s.Get(BitName(name, i, width))
	}
	return v
}

func (s *CompiledSim) in1(g *cGate, slot int) bool {
	n := g.in[slot]
	if n < 0 {
		return false
	}
	return s.vals[n]
}

// Settle exposes sequential state and evaluates every combinational gate
// once in topological order.  Acyclicity is checked at build time, so a
// single pass always reaches the fixpoint.
func (s *CompiledSim) Settle() {
	for _, gi := range s.p.seqs {
		g := &s.gates[gi]
		st := s.state[gi]
		if g.qSlot >= 0 && g.out[g.qSlot] >= 0 {
			s.vals[g.out[g.qSlot]] = st
		}
		if g.qnSlot >= 0 && g.out[g.qnSlot] >= 0 {
			s.vals[g.out[g.qnSlot]] = !st
		}
	}
	for _, gi := range s.p.comb {
		s.evalComb(gi)
	}
}

func (s *CompiledSim) evalComb(gi int32) {
	g := &s.gates[gi]
	var z bool
	switch g.op {
	case opInv:
		z = !s.in1(g, 0)
	case opBuf:
		z = s.in1(g, 0)
	case opNand2:
		z = !(s.in1(g, 0) && s.in1(g, 1))
	case opNor2:
		z = !(s.in1(g, 0) || s.in1(g, 1))
	case opAnd2:
		z = s.in1(g, 0) && s.in1(g, 1)
	case opOr2:
		z = s.in1(g, 0) || s.in1(g, 1)
	case opXor2:
		z = s.in1(g, 0) != s.in1(g, 1)
	case opXnor2:
		z = s.in1(g, 0) == s.in1(g, 1)
	case opMux2:
		if s.in1(g, 2) {
			z = s.in1(g, 1)
		} else {
			z = s.in1(g, 0)
		}
	case opTie0:
		z = false
	case opTie1:
		z = true
	default:
		s.evalCustom(gi, false)
		return
	}
	if len(g.out) > 0 && g.out[0] >= 0 {
		s.vals[g.out[0]] = z
	}
}

// evalCustom evaluates a non-library cell through its Eval closure using a
// reused scratch map.  For sequential cells it returns the next state via
// the caller instead of writing nets.
func (s *CompiledSim) evalCustom(gi int32, clockHigh bool) bool {
	g := &s.gates[gi]
	clear(s.scratch)
	for si, f := range g.cell.Inputs {
		s.scratch[f] = s.in1(g, si)
	}
	if g.seq {
		s.scratch["Q"] = s.state[gi]
		if clockHigh {
			s.scratch[g.cell.Clock] = true
		}
		return g.cell.Eval(s.scratch)["Q"]
	}
	out := g.cell.Eval(s.scratch)
	for oi, f := range g.cell.Outputs {
		if g.out[oi] >= 0 {
			if v, ok := out[f]; ok {
				s.vals[g.out[oi]] = v
			}
		}
	}
	return false
}

// evalSeqNext computes the next stored bit of a sequential gate from the
// current settled net values.  clockHigh tells level-sensitive cells that
// the pulsed enable is (conceptually) high even if the net value still
// reads low on the fast Tick path.
func (s *CompiledSim) evalSeqNext(gi int32, clockHigh bool) bool {
	g := &s.gates[gi]
	switch g.op {
	case opDFF: // D, CK
		return s.in1(g, 0)
	case opSDFF: // D, SI, SE, CK
		if s.in1(g, 2) {
			return s.in1(g, 1)
		}
		return s.in1(g, 0)
	case opDFFR: // D, CK, R — reset sampled on the edge, like Simulator
		if s.in1(g, 2) {
			return false
		}
		return s.in1(g, 0)
	case opLatch: // D, EN
		if clockHigh || s.in1(g, 1) {
			return s.in1(g, 0)
		}
		return s.state[gi]
	}
	return s.evalCustom(gi, clockHigh)
}

func (s *CompiledSim) clockVal(gi int32) bool {
	g := &s.gates[gi]
	return s.in1(g, g.clkSlot)
}

// Tick pulses the named top-level clock net with the same semantics as
// Simulator.Tick.
func (s *CompiledSim) Tick(clock string) {
	id, ok := s.clkIDs[clock]
	if !ok {
		id = s.NetID(clock)
		s.clkIDs[clock] = id
	}
	if id < 0 {
		return
	}
	s.TickID(id)
}

// TickID pulses a clock net by id: settle low, capture every sequential
// cell whose clock pin sees a rising edge (through any gating logic),
// commit, settle.  When the clock net feeds nothing but clock pins the
// high/low half-settles are provably no-ops and are skipped.
func (s *CompiledSim) TickID(ck int) {
	obsTicks.Add(1)
	s.vals[ck] = false
	s.Settle()
	if s.p.clockPure[ck] {
		for _, gi := range s.p.seqs {
			g := &s.gates[gi]
			if g.in[g.clkSlot] == int32(ck) {
				s.state[gi] = s.evalSeqNext(gi, true)
			}
		}
		s.Settle()
		return
	}
	for _, gi := range s.p.seqs {
		s.pre[gi] = s.clockVal(gi)
	}
	s.vals[ck] = true
	s.Settle()
	for _, gi := range s.p.seqs {
		if !s.pre[gi] && s.clockVal(gi) {
			s.next[gi] = s.evalSeqNext(gi, false)
		} else {
			s.next[gi] = s.state[gi]
		}
	}
	for _, gi := range s.p.seqs {
		s.state[gi] = s.next[gi]
	}
	s.Settle()
	s.vals[ck] = false
	s.Settle()
}

// LoadState forces the stored bit of the named sequential cell.
func (s *CompiledSim) LoadState(flatName string, v bool) error {
	gi, ok := s.p.byName[flatName]
	if !ok || !s.gates[gi].seq {
		return fmt.Errorf("netlist: no sequential cell named %s", flatName)
	}
	s.state[gi] = v
	return nil
}

// Faults enumerates every injectable stuck-at site in deterministic order.
// The returned slice is shared; callers must not modify it.
func (s *CompiledSim) Faults() []SAFault { return s.p.sites }

// Inject forces a stuck-at fault on one port of one flattened gate.  Input
// forces rewire that gate pin to a reserved constant net; output forces
// disconnect the driver and pin the net, so all fanout sees the fault.
// Effects appear at the next Settle/Tick; ClearFaults undoes everything.
func (s *CompiledSim) Inject(gate, port string, value bool) error {
	gi, ok := s.p.byName[gate]
	if !ok {
		return fmt.Errorf("netlist: no gate named %s", gate)
	}
	g := &s.gates[gi]
	for si, f := range g.cell.Inputs {
		if f != port {
			continue
		}
		orig := g.in[si]
		if orig < 0 {
			return fmt.Errorf("netlist: gate %s port %s is unconnected", gate, port)
		}
		// Copy-on-write: the backing array may be shared with clones.
		g.in = append([]int32(nil), g.in...)
		if value {
			g.in[si] = s.p.const1
		} else {
			g.in[si] = s.p.const0
		}
		s.forces = append(s.forces, cForce{gate: gi, slot: si, orig: orig, val: value})
		obsInjected.Add(1)
		return nil
	}
	for oi, f := range g.cell.Outputs {
		if f != port {
			continue
		}
		orig := g.out[oi]
		if orig < 0 {
			return fmt.Errorf("netlist: gate %s port %s is unconnected", gate, port)
		}
		g.out = append([]int32(nil), g.out...)
		g.out[oi] = -1
		s.vals[orig] = value
		s.forces = append(s.forces, cForce{gate: gi, slot: oi, out: true, orig: orig, val: value})
		obsInjected.Add(1)
		return nil
	}
	return fmt.Errorf("netlist: gate %s (%s) has no port %s", gate, g.cell.Name, port)
}

// ClearFaults removes every injected fault.  Downstream net values are
// stale until the next Settle (a campaign normally calls Reset).
func (s *CompiledSim) ClearFaults() {
	for i := len(s.forces) - 1; i >= 0; i-- {
		f := s.forces[i]
		g := &s.gates[f.gate]
		if f.out {
			g.out[f.slot] = f.orig
		} else {
			g.in[f.slot] = f.orig
		}
	}
	s.forces = s.forces[:0]
}

// Reset returns every net and sequential bit to 0 and settles.  Active
// faults stay injected (forced nets are re-asserted).
func (s *CompiledSim) Reset() {
	for i := range s.vals {
		s.vals[i] = false
	}
	s.vals[s.p.const1] = true
	for i := range s.state {
		s.state[i] = false
	}
	for _, f := range s.forces {
		if f.out {
			s.vals[f.orig] = f.val
		}
	}
	s.Settle()
}

// Clone returns an independent simulator over the same compiled program
// with all nets and states at 0.  Cloning is cheap (no re-flattening or
// re-levelization), which is what fault campaigns use to give each worker
// a private machine.  Active faults are carried over.
func (s *CompiledSim) Clone() *CompiledSim {
	c := &CompiledSim{
		p:       s.p,
		gates:   append([]cGate(nil), s.gates...),
		vals:    make([]bool, len(s.vals)),
		state:   make([]bool, len(s.state)),
		next:    make([]bool, len(s.next)),
		pre:     make([]bool, len(s.pre)),
		forces:  append([]cForce(nil), s.forces...),
		scratch: make(map[string]bool, 8),
		clkIDs:  make(map[string]int, 2),
	}
	c.vals[c.p.const1] = true
	for _, f := range c.forces {
		if f.out {
			c.vals[f.orig] = f.val
		}
	}
	c.Settle()
	return c
}
