package report

import (
	"encoding/json"
	"errors"
	"fmt"
)

// SchemaVersion stamps every serialized report document.  Decoders reject
// versions they do not speak (ErrSchemaVersion) instead of misreading a
// future layout, so catalog records and archived compare tables stay
// readable — or at least loudly unreadable — across PRs.
const SchemaVersion = "steac-report/v1"

// ErrSchemaVersion is returned when a serialized report names a schema
// this binary does not understand.
var ErrSchemaVersion = errors.New("report: unsupported schema version")

// Compare is the serializable tradeoff table behind the catalog compare
// endpoints: a title, column names, and string-rendered rows.  Cells are
// pre-formatted strings so that every rendering (JSON, CSV, HTML, text)
// shows exactly the same values — a compare table is a published artifact,
// not a float that each format rounds differently.
type Compare struct {
	Schema  string     `json:"schema"`
	Title   string     `json:"title,omitempty"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// NewCompare builds an empty compare table with the current schema.
func NewCompare(title string, columns ...string) *Compare {
	return &Compare{Schema: SchemaVersion, Title: title, Columns: columns, Rows: [][]string{}}
}

// AddRow appends one row.  Short rows are padded to the column count so
// renderers never index past a ragged row.
func (c *Compare) AddRow(cells ...string) {
	for len(cells) < len(c.Columns) {
		cells = append(cells, "")
	}
	c.Rows = append(c.Rows, cells)
}

// JSON renders the schema-versioned document, newline-terminated.
func (c *Compare) JSON() ([]byte, error) {
	blob, err := json.Marshal(c)
	if err != nil {
		return nil, fmt.Errorf("report: marshal compare: %w", err)
	}
	return append(blob, '\n'), nil
}

// DecodeCompare parses a serialized compare document, rejecting unknown
// schema versions with ErrSchemaVersion (errors.Is-matchable).
func DecodeCompare(data []byte) (*Compare, error) {
	var c Compare
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("report: decode compare: %w", err)
	}
	if c.Schema != SchemaVersion {
		return nil, fmt.Errorf("%w: document declares %q, this binary speaks %q",
			ErrSchemaVersion, c.Schema, SchemaVersion)
	}
	return &c, nil
}

// Table converts the compare document to the fixed-width text renderer for
// terminal output.
func (c *Compare) Table() *Table {
	t := NewTable(c.Title, c.Columns...)
	for _, row := range c.Rows {
		cells := make([]interface{}, len(row))
		for i, cell := range row {
			cells[i] = cell
		}
		t.Row(cells...)
	}
	return t
}

// Float renders a float the way Table does (two decimals, trailing zeros
// trimmed) so compare cells match the existing text reports.
func Float(v float64) string { return trimFloat(v) }
