package memfault

import (
	"fmt"

	"steac/internal/memory"
)

// FaultyRAM is an SRAM with injected functional faults.  It implements
// memory.RAM, so March engines can run against faulty and fault-free
// memories interchangeably.
type FaultyRAM struct {
	cfg    memory.Config
	cells  []uint64 // raw array content
	faults []Fault

	// sense holds the last value sensed per bit position (the sense-amp
	// latch), which is what an SOF cell returns on read.
	sense []int

	afMap    map[int]int
	byVictim map[Cell][]int // indices into faults
	byAggr   map[Cell][]int
}

var _ memory.RAM = (*FaultyRAM)(nil)

// NewFaulty builds a fault-injected RAM.  Stuck-at victims are initialized
// to their stuck value; everything else starts at 0.
func NewFaulty(cfg memory.Config, faults []Fault) (*FaultyRAM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &FaultyRAM{
		cfg:      cfg,
		cells:    make([]uint64, cfg.Words),
		faults:   faults,
		sense:    make([]int, cfg.Bits),
		afMap:    make(map[int]int),
		byVictim: make(map[Cell][]int),
		byAggr:   make(map[Cell][]int),
	}
	if err := m.install(); err != nil {
		return nil, err
	}
	return m, nil
}

// Reset returns the RAM to its power-on state under a new fault list,
// reusing the existing storage and index maps.  The simulation campaign
// uses it so each worker allocates one scratch machine for thousands of
// single-fault runs.  The resulting state is identical to NewFaulty(cfg,
// faults).
func (m *FaultyRAM) Reset(faults []Fault) error {
	for i := range m.cells {
		m.cells[i] = 0
	}
	for i := range m.sense {
		m.sense[i] = 0
	}
	clear(m.afMap)
	clear(m.byVictim)
	clear(m.byAggr)
	m.faults = faults
	return m.install()
}

// install validates the fault list, builds the victim/aggressor indices and
// applies stuck-at-1 initialization.  Cells, sense latches and maps must be
// in power-on (cleared) state.
func (m *FaultyRAM) install() error {
	for i, f := range m.faults {
		if err := f.Validate(m.cfg); err != nil {
			return err
		}
		switch f.Kind {
		case AF:
			m.afMap[f.Victim.Addr] = f.MapAddr
		case CFin, CFid:
			m.byAggr[f.Aggr] = append(m.byAggr[f.Aggr], i)
			m.byVictim[f.Victim] = append(m.byVictim[f.Victim], i)
		default:
			m.byVictim[f.Victim] = append(m.byVictim[f.Victim], i)
		}
		if f.Kind == SA1 {
			m.cells[f.Victim.Addr] |= 1 << f.Victim.Bit
		}
	}
	return nil
}

// Config returns the macro configuration.
func (m *FaultyRAM) Config() memory.Config { return m.cfg }

func (m *FaultyRAM) effAddr(addr int) int {
	idx := addr % m.cfg.Words
	if idx < 0 {
		idx += m.cfg.Words
	}
	if mapped, ok := m.afMap[idx]; ok {
		return mapped
	}
	return idx
}

func (m *FaultyRAM) cell(c Cell) int {
	return int(m.cells[c.Addr]>>c.Bit) & 1
}

// setCell stores v into the raw array honoring stuck-at forcing.
func (m *FaultyRAM) setCell(c Cell, v int) {
	for _, fi := range m.byVictim[c] {
		switch m.faults[fi].Kind {
		case SA0:
			v = 0
		case SA1:
			v = 1
		}
	}
	if v != 0 {
		m.cells[c.Addr] |= 1 << c.Bit
	} else {
		m.cells[c.Addr] &^= 1 << c.Bit
	}
}

// Write stores data at addr through the faulty port.
func (m *FaultyRAM) Write(addr int, data uint64) {
	eff := m.effAddr(addr)
	data &= m.cfg.Mask()

	type transition struct {
		cell Cell
		rise bool
	}
	// At most one transition per bit and Bits <= 64, so a stack array
	// avoids a heap allocation on every write (the campaign hot path).
	var transitions [64]transition
	nt := 0

	for bit := 0; bit < m.cfg.Bits; bit++ {
		c := Cell{Addr: eff, Bit: bit}
		old := m.cell(c)
		want := int(data>>bit) & 1
		v := want
		skip := false
		for _, fi := range m.byVictim[c] {
			switch m.faults[fi].Kind {
			case SOF:
				skip = true // cell inaccessible: write lost
			case TFUp:
				if old == 0 && want == 1 {
					v = 0
				}
			case TFDown:
				if old == 1 && want == 0 {
					v = 1
				}
			}
		}
		if skip {
			continue
		}
		m.setCell(c, v)
		if now := m.cell(c); now != old {
			transitions[nt] = transition{c, now == 1}
			nt++
		}
	}

	// One level of coupling effects: transitions caused by this write
	// trigger CFin/CFid on their victims.  (Cascaded coupling — a coupling
	// effect triggering another coupling fault — is not modelled, matching
	// the single-fault assumption used in March coverage proofs.)
	for _, tr := range transitions[:nt] {
		for _, fi := range m.byAggr[tr.cell] {
			f := m.faults[fi]
			if f.AggrRise != tr.rise {
				continue
			}
			switch f.Kind {
			case CFin:
				m.setCell(f.Victim, 1-m.cell(f.Victim))
			case CFid:
				m.setCell(f.Victim, f.Forced)
			}
		}
	}
}

// ReadB reads through port B of a two-port SRAM: the cell array and its
// faults are shared with port A, plus any port-B stuck-at faults.  Calling
// it on a single-port configuration panics, like memory.SRAM.
func (m *FaultyRAM) ReadB(addr int) uint64 {
	if m.cfg.Kind != memory.TwoPort {
		panic(fmt.Sprintf("memfault: ReadB on single-port %s", m.cfg.Name))
	}
	word := m.Read(addr)
	eff := m.effAddr(addr)
	for bit := 0; bit < m.cfg.Bits; bit++ {
		for _, fi := range m.byVictim[Cell{Addr: eff, Bit: bit}] {
			switch m.faults[fi].Kind {
			case SAB0:
				word &^= 1 << bit
			case SAB1:
				word |= 1 << bit
			}
		}
	}
	return word
}

// Read returns the word at addr as seen through the faulty port.
func (m *FaultyRAM) Read(addr int) uint64 {
	eff := m.effAddr(addr)
	var word uint64
	for bit := 0; bit < m.cfg.Bits; bit++ {
		c := Cell{Addr: eff, Bit: bit}
		v := m.cell(c)
		stuckOpen := false
		for _, fi := range m.byVictim[c] {
			f := m.faults[fi]
			switch f.Kind {
			case SOF:
				stuckOpen = true
			case CFst:
				if m.cell(f.Aggr) == f.AggrState {
					v = f.Forced
				}
			case RDF:
				v = 1 - v
				m.setCell(c, v)
			}
		}
		if stuckOpen {
			v = m.sense[bit]
		}
		m.sense[bit] = v
		if v != 0 {
			word |= uint64(1) << bit
		}
	}
	return word
}

// Pause models a test delay (the Del element of a retention March test):
// every data-retention-fault victim decays to its leakage value.
func (m *FaultyRAM) Pause() {
	for _, f := range m.faults {
		if f.Kind == DRF {
			m.setCell(f.Victim, f.Forced)
		}
	}
}

// RawCell exposes the raw array content for white-box tests.
func (m *FaultyRAM) RawCell(c Cell) (int, error) {
	if c.Addr < 0 || c.Addr >= m.cfg.Words || c.Bit < 0 || c.Bit >= m.cfg.Bits {
		return 0, fmt.Errorf("memfault: cell %v out of range", c)
	}
	return m.cell(c), nil
}
